"""FSM001: state-dispatch exhaustiveness for protocol machines.

The paper's kernel talks to peers through explicit state machines
(LAPB §3, TCP over the gateway §2.3); this reproduction declares each
one as an ``enum.Enum`` subclass named ``*State`` (``LapbState``,
``TcpState``, ``CircuitState``).  A state machine rots in three ways a
type checker never sees:

* a **dead state** — declared, never referenced: the enum promises a
  lifecycle phase the code no longer has;
* an **unreachable state** — dispatch branches test for it, but no
  transition ever enters it (the branch is dead code wearing a
  protocol costume);
* an **unhandled state** — transitions enter it, but no dispatch ever
  tests for it, so frames arriving in that state fall through whatever
  default the code happens to have.

References are collected project-wide (a state stored in one module
may be dispatched in another).  Annotations are skipped — ``state:
LapbState`` names the type, not a member — and any *bare* use of the
enum class (iteration, ``list(TcpState)``) makes the machine opaque to
this analysis, so the pass conservatively skips it rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.callgraph import CallGraph, ProjectInfo
from repro.analysis.findings import Finding
from repro.analysis.imports import dotted_name
from repro.analysis.registry import ModuleInfo, ProjectPass, Rule, register_deep_pass

RULE_FSM = Rule(
    id="FSM001", name="state-dispatch-exhaustiveness", severity="error",
    summary="every declared protocol state must be entered by some "
            "transition and tested by some dispatch",
)

_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


@dataclass
class _Machine:
    """One ``*State`` enum and what the project does with its members."""

    cls_name: str
    module: ModuleInfo
    node: ast.ClassDef
    members: List[str]
    entered: Set[str] = field(default_factory=set)
    compared: Set[str] = field(default_factory=set)
    referenced: Set[str] = field(default_factory=set)
    opaque: bool = False


@register_deep_pass
class FsmPass(ProjectPass):
    name = "fsm"
    rules = (RULE_FSM,)

    def check_project(self, project: ProjectInfo,
                      graph: CallGraph) -> Iterator[Finding]:
        machines = self._collect_machines(project)
        if not machines:
            return
        for module in project.modules.values():
            _Collector(machines).scan(module.tree)
        for machine in machines.values():
            if machine.opaque:
                continue
            for member in machine.members:
                state = f"{machine.cls_name}.{member}"
                if member not in machine.referenced:
                    yield self.finding(
                        machine.module, machine.node, RULE_FSM,
                        f"dead state: {state} is declared but never "
                        f"referenced; delete it or wire the missing "
                        f"lifecycle phase",
                    )
                elif member not in machine.entered:
                    yield self.finding(
                        machine.module, machine.node, RULE_FSM,
                        f"unreachable state: {state} is tested by "
                        f"dispatch but no transition ever enters it",
                    )
                elif member not in machine.compared:
                    yield self.finding(
                        machine.module, machine.node, RULE_FSM,
                        f"unhandled state: transitions enter {state} "
                        f"but no dispatch branch ever tests for it",
                    )

    def _collect_machines(self,
                          project: ProjectInfo) -> Dict[str, _Machine]:
        machines: Dict[str, _Machine] = {}
        for mod_name, module in project.modules.items():
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.ClassDef)
                        and node.name.endswith("State")
                        and _is_enum(node)):
                    continue
                members = [
                    target.id
                    for statement in node.body
                    if isinstance(statement, ast.Assign)
                    for target in statement.targets
                    if isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                ]
                if len(members) >= 2:
                    machines[node.name] = _Machine(
                        cls_name=node.name, module=module,
                        node=node, members=members)
        return machines


def _is_enum(node: ast.ClassDef) -> bool:
    for base in node.bases:
        text = dotted_name(base)
        if text is not None and text.split(".")[-1] in _ENUM_BASES:
            return True
    return False


class _Collector:
    """Classifies every reference to a tracked machine's members.

    Context matters: a member inside any comparison (including the
    tuple of an ``in (A, B)`` test) or used as a dict-literal key (a
    dispatch table) counts as *dispatch*; a member in
    any other expression position — assignment value, return, call
    argument, default — counts as a potential *transition into* the
    state.  Annotation subtrees and the enum's own declaration body are
    skipped entirely.
    """

    def __init__(self, machines: Dict[str, _Machine]) -> None:
        self.machines = machines

    def scan(self, tree: ast.Module) -> None:
        self._visit_block(tree.body, in_compare=False)

    # -- statements ----------------------------------------------------

    def _visit_block(self, body: List[ast.stmt],
                     in_compare: bool) -> None:
        for statement in body:
            self._visit_statement(statement, in_compare)

    def _visit_statement(self, node: ast.stmt, in_compare: bool) -> None:
        if isinstance(node, ast.ClassDef):
            if node.name in self.machines:
                return  # the declaration itself is not a reference
            self._visit_block(node.body, in_compare)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in (node.args.defaults
                            + [d for d in node.args.kw_defaults
                               if d is not None]):
                self._visit_expr(default, in_compare=False)
            self._visit_block(node.body, in_compare)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._visit_expr(node.value, in_compare=False)
            return  # the annotation names the type, not a member
        if isinstance(node, (ast.If, ast.While)):
            self._visit_expr(node.test, in_compare=True)
            self._visit_block(node.body, in_compare=False)
            self._visit_block(node.orelse, in_compare=False)
            return
        # Generic statement: expressions with compare detection.
        # ``iter_child_nodes`` flattens list fields, so a compound
        # statement's body statements arrive here as stmt children.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, in_compare=False)
            elif isinstance(child, ast.stmt):
                self._visit_statement(child, in_compare)
            elif isinstance(child, ast.excepthandler):
                self._visit_block(child.body, in_compare)
            elif isinstance(child, ast.withitem):
                self._visit_expr(child.context_expr, in_compare=False)

    # -- expressions ---------------------------------------------------

    def _visit_expr(self, node: ast.expr, in_compare: bool) -> None:
        if isinstance(node, ast.Compare):
            self._visit_expr(node.left, in_compare=True)
            for comparator in node.comparators:
                self._visit_expr(comparator, in_compare=True)
            return
        if isinstance(node, ast.IfExp):
            self._visit_expr(node.test, in_compare=True)
            self._visit_expr(node.body, in_compare)
            self._visit_expr(node.orelse, in_compare)
            return
        if isinstance(node, ast.Dict):
            # A dict literal keyed by members is a dispatch table --
            # ``{LapbState.CONNECTED: on_frame, ...}[self.state]`` tests
            # states exactly like an ``==`` chain would, so the keys
            # count as dispatch; the values stay ordinary expressions
            # (a transition table's value really does *enter* a state).
            for key in node.keys:
                if key is not None:  # None is a ``**splat`` entry
                    self._visit_expr(key, in_compare=True)
            for value in node.values:
                self._visit_expr(value, in_compare)
            return
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id in self.machines):
                self._classify(node, in_compare)
                return  # the root Name is the classified access itself
            self._visit_expr(node.value, in_compare)
            return
        if isinstance(node, ast.Name):
            machine = self.machines.get(node.id)
            if machine is not None:
                # Bare class use (iteration, constructor lookup...):
                # the member set escapes syntactic tracking.
                machine.opaque = True
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, in_compare)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter, in_compare=False)
                for condition in child.ifs:
                    self._visit_expr(condition, in_compare=True)

    def _classify(self, node: ast.Attribute, in_compare: bool) -> None:
        if not isinstance(node.value, ast.Name):
            return
        machine = self.machines.get(node.value.id)
        if machine is None or node.attr not in machine.members:
            return
        machine.referenced.add(node.attr)
        if in_compare:
            machine.compared.add(node.attr)
        else:
            machine.entered.add(node.attr)
