"""SNAP001: sim state must survive a snapshot.

The model checker (:mod:`repro.check`) freezes whole worlds with
``copy.deepcopy`` and branches execution from the copies.  Deepcopy
rebinds *bound methods* through its memo -- a scheduled
``self._flush`` in the copy points at the copied object -- but three
idioms silently break that contract:

* a **lambda or generator expression stored on an object** deepcopies
  *by reference*: the closure cells still point into the live world,
  so every "frozen" snapshot aliases the state it was meant to freeze
  (a generator additionally cannot be copied at all once started);
* an **OS handle stored on an object** -- ``open()`` files,
  ``threading`` primitives, ``socket.socket()`` -- either raises
  ``TypeError`` under deepcopy or duplicates a kernel object whose
  identity the copy cannot share;
* a **lambda handed to the scheduler** (``schedule`` / ``call_soon`` /
  ``at``) is captured inside a pending event; the restored event then
  calls back into the *original* world, which is the worst possible
  place for a restored schedule to land.

The fix is the same in every case: make the callback a bound method
(deepcopy-safe by construction) and keep handles off simulated
objects.  Harness, analysis, and CLI code never gets snapshotted and
is allowlisted in the engine.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.imports import ImportMap, call_qualname
from repro.analysis.registry import (
    LintPass,
    ModuleInfo,
    Rule,
    register_pass,
)

RULE_SNAPSHOT = Rule(
    id="SNAP001", name="un-snapshotable-sim-state", severity="error",
    summary="lambda/generator/OS handle stored on sim state (or lambda "
            "scheduled as an event) aliases the live world under "
            "deepcopy snapshot; use a bound method / keep handles off "
            "sim objects",
)

#: Scheduler entry points whose callback argument ends up inside a
#: pending event (mirrors the names the races pass tracks).
_SCHEDULER_METHODS = frozenset({"schedule", "call_soon", "at", "call_at"})

#: Resolved call-target prefixes that return OS-level handles.
#: Matching on the *resolved* name means ``from threading import Lock``
#: still hits, while the repo's own ``Event`` (sim.engine) never
#: false-positives.
_HANDLE_PREFIXES = ("threading.", "socket.", "mmap.", "subprocess.")

#: Bare builtins returning handles.
_HANDLE_BUILTINS = frozenset({"open"})


@register_pass
class SnapshotSafetyPass(LintPass):
    """Flags state the model checker's StateCapturer cannot freeze."""

    name = "snapshot"
    rules = (RULE_SNAPSHOT,)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = ImportMap.collect(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assignment(module, imports, node)
            elif isinstance(node, ast.Call):
                yield from self._check_scheduler_call(module, node)

    # -- stored state --------------------------------------------------

    def _check_assignment(self, module: ModuleInfo, imports: ImportMap,
                          node: ast.stmt) -> Iterator[Finding]:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        attribute = next(
            (target for target in targets
             if isinstance(target, ast.Attribute)
             and isinstance(target.value, ast.Name)
             and target.value.id == "self"),
            None)
        value = getattr(node, "value", None)
        if attribute is None or value is None:
            return
        stored = f"self.{attribute.attr}"
        if isinstance(value, ast.Lambda):
            yield self.finding(
                module, node, RULE_SNAPSHOT,
                f"lambda stored on {stored} deepcopies by reference -- "
                f"a snapshot's closure cells still point into the live "
                f"world; store a bound method instead",
            )
        elif isinstance(value, ast.GeneratorExp):
            yield self.finding(
                module, node, RULE_SNAPSHOT,
                f"generator expression stored on {stored} cannot be "
                f"deepcopied once started; materialise it or iterate "
                f"it where it is built",
            )
        elif isinstance(value, ast.Call):
            handle = self._handle_call(imports, value)
            if handle is not None:
                yield self.finding(
                    module, node, RULE_SNAPSHOT,
                    f"OS handle from {handle}() stored on {stored} does "
                    f"not survive deepcopy snapshot; keep handles off "
                    f"sim objects (or register a reducer in "
                    f"repro.check.snapshot)",
                )

    @staticmethod
    def _handle_call(imports: ImportMap, node: ast.Call) -> Optional[str]:
        resolved = call_qualname(node, imports)
        if resolved is None:
            return None
        if resolved in _HANDLE_BUILTINS:
            return resolved
        if resolved.startswith(_HANDLE_PREFIXES):
            return resolved
        return None

    # -- scheduled callbacks -------------------------------------------

    def _check_scheduler_call(self, module: ModuleInfo,
                              node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULER_METHODS):
            return
        callbacks = list(node.args)
        callbacks += [keyword.value for keyword in node.keywords
                      if keyword.arg != "label"]
        for argument in callbacks:
            if isinstance(argument, (ast.Lambda, ast.GeneratorExp)):
                what = ("lambda" if isinstance(argument, ast.Lambda)
                        else "generator expression")
                yield self.finding(
                    module, argument, RULE_SNAPSHOT,
                    f"{what} scheduled through .{node.func.attr}() is "
                    f"captured inside a pending event; a restored "
                    f"snapshot would call back into the original "
                    f"world -- schedule a bound method",
                )
