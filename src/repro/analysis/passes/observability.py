"""Observability pass: simulation code reports through the tracer.

A bare ``print()`` inside simulation code is invisible to the flight
recorder, unfilterable, and interleaves nondeterministically when the
harness fans runs across worker processes.  The sanctioned channels are
``tracer.log`` (events), the :mod:`repro.obs` instruments (metrics),
and the render/report helpers (human output assembled *after* the run).

* **OBS001 print-in-sim** — a bare ``print()`` call in simulation code.
  CLI front doors (``__main__``), the operator-facing ``tools``
  modules, and the analysis framework itself legitimately print and
  are allowlisted in the engine.
* **OBS002 unknown-drop-reason** — a recorder terminal (``drop`` /
  ``drop_key`` / ``shed_packet`` / ``lost_key``) in the sharding layer
  (``repro/scale``) or the observability layer itself (``repro/obs``)
  whose reason is not a literal from the live
  :data:`repro.obs.spans.REASONS` vocabulary.  These layers aggregate
  and re-emit other layers' terminals across region boundaries, where
  an invented reason word would silently split the drop-reason
  histograms the merged view reconciles; the only non-literal allowed
  is forwarding a parameter named ``reason``.  (The ``--deep``
  CONS001 pass proves the same obligation repo-wide; OBS002 keeps the
  fast default lint covering the two layers where the merge invariant
  makes it load-bearing.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    LintPass,
    ModuleInfo,
    Rule,
    register_pass,
)
from repro.obs.spans import REASONS

RULE_PRINT = Rule(
    id="OBS001", name="print-in-sim", severity="error",
    summary="bare print() in simulation code; log through the tracer or "
            "an obs instrument so output is deterministic and filterable",
)

RULE_REASON = Rule(
    id="OBS002", name="unknown-drop-reason", severity="error",
    summary="drop/shed reason in repro/scale or repro/obs must be a "
            "literal from the live repro.obs.spans.REASONS vocabulary "
            "(or forward a parameter named 'reason')",
)

#: Recorder terminals whose trailing argument is a reason word.
_TERMINAL_METHODS = frozenset({"drop", "drop_key", "shed_packet",
                               "lost_key"})

#: Path fragments that put a module in OBS002's scope.
_REASON_SCOPES = ("repro/scale/", "repro/obs/")


@register_pass
class ObservabilityPass(LintPass):
    """Flags stdout writes that bypass the tracer/recorder."""

    name = "observability"
    rules = (RULE_PRINT, RULE_REASON)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        in_reason_scope = any(
            scope in module.path.as_posix() for scope in _REASON_SCOPES)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.finding(
                    module, node, RULE_PRINT,
                    "print() bypasses the tracer: use tracer.log(...) for "
                    "events or an obs instrument for metrics; render "
                    "human-readable text after the run",
                )
            elif in_reason_scope:
                yield from self._check_reason(module, node)

    def _check_reason(self, module: ModuleInfo,
                      node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in _TERMINAL_METHODS):
            return
        reason: Optional[ast.expr] = node.args[-1] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "reason":
                reason = keyword.value
        if reason is None:
            return
        if isinstance(reason, ast.Constant) and isinstance(reason.value, str):
            if reason.value not in REASONS:
                yield self.finding(
                    module, node, RULE_REASON,
                    f"reason {reason.value!r} passed to "
                    f".{node.func.attr}() is not in the live obs "
                    f"vocabulary (repro.obs.spans.REASONS); a word the "
                    f"merge view has never heard of splits the "
                    f"drop-reason histograms — reuse or extend REASONS",
                )
        elif not (isinstance(reason, ast.Name) and reason.id == "reason"):
            yield self.finding(
                module, node, RULE_REASON,
                f"computed reason passed to .{node.func.attr}(): in "
                f"repro/scale and repro/obs the reason must be a REASONS "
                f"literal or a forwarded parameter named 'reason', so "
                f"the vocabulary stays statically checkable",
            )
