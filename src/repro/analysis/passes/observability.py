"""Observability pass: simulation code reports through the tracer.

A bare ``print()`` inside simulation code is invisible to the flight
recorder, unfilterable, and interleaves nondeterministically when the
harness fans runs across worker processes.  The sanctioned channels are
``tracer.log`` (events), the :mod:`repro.obs` instruments (metrics),
and the render/report helpers (human output assembled *after* the run).

* **OBS001 print-in-sim** — a bare ``print()`` call in simulation code.
  CLI front doors (``__main__``), the operator-facing ``tools``
  modules, and the analysis framework itself legitimately print and
  are allowlisted in the engine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    LintPass,
    ModuleInfo,
    Rule,
    register_pass,
)

RULE_PRINT = Rule(
    id="OBS001", name="print-in-sim", severity="error",
    summary="bare print() in simulation code; log through the tracer or "
            "an obs instrument so output is deterministic and filterable",
)


@register_pass
class ObservabilityPass(LintPass):
    """Flags stdout writes that bypass the tracer/recorder."""

    name = "observability"
    rules = (RULE_PRINT,)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.finding(
                    module, node, RULE_PRINT,
                    "print() bypasses the tracer: use tracer.log(...) for "
                    "events or an obs instrument for metrics; render "
                    "human-readable text after the run",
                )
