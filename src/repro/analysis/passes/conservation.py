"""CONS001: counter-conservation proof obligations for drop paths.

The flight recorder's invariant (``born == delivered + dropped + shed +
in_flight``) only holds if every code path that discards a frame both
*counts* it and *says why* in a place the recorder or tracer can see.
This pass discharges the static half of that proof over the four
modules that own drop paths — ``netif/queues.py``, ``core/driver.py``,
``inet/netstack.py``, ``tnc/kiss_tnc.py`` — with three obligations:

1. **Vocabulary** (all modules): every literal reason handed to a
   recorder terminal (``drop`` / ``drop_key`` / ``shed_packet`` /
   ``lost_key``) must come from the fixed 15-word vocabulary in
   ``repro.obs.spans.REASONS``, cross-checked *live* against the
   imported tuple so the lint can never drift from the runtime.
2. **Pairing** (target modules): a statement suite that bumps a
   drop-accounting counter (``self.*drop*``/``*bad*``/``*shed*``,
   ``ierrors``/``oerrors``, or a ``CounterSet.bump`` of a known drop
   counter) must also contain an observability emission — a recorder
   terminal, a ``tracer.log``, or an ``on_drop``/``on_shed`` hook call
   (the hook *is* the conduit: its installer owns the terminal).
3. **Schema** (netstack): every ``self.counters.bump("name")`` uses a
   name pre-seeded in the ``CounterSet(...)`` constructor, so a typo'd
   counter cannot silently count into a row netstat never renders.

Discard paths that bump *no* counter at all are invisible to syntax —
that blind spot is exactly what the runtime ``SimSanitizer`` covers
with stale-span detection (static/dynamic agreement, DESIGN.md §8).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, ProjectInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, ProjectPass, Rule, register_deep_pass
from repro.obs.spans import REASONS

RULE_CONSERVATION = Rule(
    id="CONS001", name="unaccounted-drop-path", severity="error",
    summary="drop path must bump a counter AND emit a recorder/tracer "
            "reason from the fixed obs vocabulary",
)

#: Modules carrying the pairing obligation (posix path suffixes).
TARGET_SUFFIXES = (
    "netif/queues.py",
    "core/driver.py",
    "inet/netstack.py",
    "tnc/kiss_tnc.py",
    "ax25/lapb.py",
)

#: Recorder terminals whose last literal argument is a reason word.
TERMINAL_METHODS = frozenset({"drop", "drop_key", "shed_packet",
                              "lost_key"})

#: Calls that satisfy the emission obligation inside a drop suite.
_EMISSION_METHODS = TERMINAL_METHODS | {"log", "on_drop", "on_shed"}

#: ``self.<attr> += 1`` counters that mark a discarded frame.  The
#: promiscuous-overhead counters (``frames_not_for_us``,
#: ``frames_filtered``) are deliberately absent: a bystander copy of a
#: broadcast medium is not *our* packet dying, and terminating its span
#: would double-count the real receiver's.
_DROP_ATTR_SUBSTRINGS = ("drop", "bad", "shed")
_DROP_ATTR_EXACT = frozenset({"ierrors", "oerrors"})

#: ``CounterSet.bump`` names that mark a discarded datagram.
#: ``udp_no_port`` is absent on purpose: the datagram was *delivered*
#: (its span already terminated) before the demux missed.
_DROP_BUMP_NAMES = frozenset({
    "ip_bad", "ip_no_route", "ip_ttl_expired", "ip_forward_filtered",
    "ip_input_drops", "if_snd_drops", "if_output_sheds",
})


@register_deep_pass
class ConservationPass(ProjectPass):
    name = "conservation"
    rules = (RULE_CONSERVATION,)

    def check_project(self, project: ProjectInfo,
                      graph: CallGraph) -> Iterator[Finding]:
        for mod_name in sorted(project.modules):
            module = project.modules[mod_name]
            yield from self._check_vocabulary(module)
            if module.path.as_posix().endswith(TARGET_SUFFIXES):
                yield from self._check_pairing(module)
            if module.path.as_posix().endswith("inet/netstack.py"):
                yield from self._check_schema(module)

    # ------------------------------------------------------------------
    # obligation 1: reason vocabulary
    # ------------------------------------------------------------------

    def _check_vocabulary(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in TERMINAL_METHODS
                    and len(node.args) >= 3):
                continue
            reason = node.args[-1]
            for keyword in node.keywords:
                if keyword.arg == "reason":
                    reason = keyword.value
            if (isinstance(reason, ast.Constant)
                    and isinstance(reason.value, str)
                    and reason.value not in REASONS):
                yield self.finding(
                    module, node, RULE_CONSERVATION,
                    f"reason {reason.value!r} passed to recorder "
                    f".{node.func.attr}() is not in the fixed obs "
                    f"vocabulary (repro.obs.spans.REASONS); invent no "
                    f"new words — reuse or extend the vocabulary in one "
                    f"place",
                )

    # ------------------------------------------------------------------
    # obligation 2: counter bump <-> emission pairing
    # ------------------------------------------------------------------

    def _check_pairing(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: ModuleInfo,
                        fn: ast.AST) -> Iterator[Finding]:
        for suite in _suites(getattr(fn, "body", [])):
            triggers = [t for statement in suite
                        for t in _triggers(statement)]
            if not triggers:
                continue
            if _suite_emits(suite):
                continue
            name, node = triggers[0]
            yield self.finding(
                module, node, RULE_CONSERVATION,
                f"drop accounting '{name}' in "
                f"{getattr(fn, 'name', '?')}() has no observability "
                f"emission on this path; pair the counter with a "
                f"FlightRecorder terminal, a tracer.log, or an "
                f"on_drop/on_shed hook so the conservation invariant "
                f"stays checkable",
            )

    # ------------------------------------------------------------------
    # obligation 3: bumped counters are declared
    # ------------------------------------------------------------------

    def _check_schema(self, module: ModuleInfo) -> Iterator[Finding]:
        declared = _declared_counters(module.tree)
        if declared is None:
            return
        for node in ast.walk(module.tree):
            name = _bump_name(node)
            if name is not None and name not in declared:
                yield self.finding(
                    module, node, RULE_CONSERVATION,
                    f"counter {name!r} is bumped but not pre-seeded in "
                    f"the CounterSet constructor; netstat would never "
                    f"render it on a quiet host — add it to the seed "
                    f"tuple",
                )


# ----------------------------------------------------------------------
# suite plumbing
# ----------------------------------------------------------------------

def _suites(body: List[ast.stmt]) -> Iterator[List[ast.stmt]]:
    """Every statement list reachable from ``body``, including itself."""
    yield body
    for statement in body:
        for field in ("body", "orelse", "finalbody"):
            child = getattr(statement, field, None)
            if isinstance(child, list) and child:
                yield from _suites(child)
        for handler in getattr(statement, "handlers", []):
            yield from _suites(handler.body)


def _walk_no_lambda(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into lambdas or nested defs.

    A bump inside a lambda is a hook *installation* (the accounting
    conduit itself), not a drop path; nested defs are their own suites.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _triggers(statement: ast.stmt) -> List[Tuple[str, ast.AST]]:
    """Drop-accounting bumps directly in this statement (not in child
    suites — those are visited as their own suites)."""
    if isinstance(statement, (ast.If, ast.For, ast.AsyncFor, ast.While,
                              ast.With, ast.AsyncWith, ast.Try,
                              ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
        return []
    out: List[Tuple[str, ast.AST]] = []
    for node in _walk_no_lambda(statement):
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"):
            attr = node.target.attr
            if (attr in _DROP_ATTR_EXACT
                    or any(token in attr
                           for token in _DROP_ATTR_SUBSTRINGS)):
                out.append((attr, node))
        name = _bump_name(node)
        if name is not None and name in _DROP_BUMP_NAMES:
            out.append((name, node))
    return out


def _bump_name(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "bump"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        return node.args[0].value
    return None


def _suite_emits(suite: List[ast.stmt]) -> bool:
    """True when any statement in the suite (nested compounds included,
    lambdas excluded) makes an observability emission call."""
    for statement in suite:
        for node in _walk_no_lambda(statement):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EMISSION_METHODS):
                return True
    return False


def _declared_counters(tree: ast.Module) -> Optional[Set[str]]:
    """Names seeded into the first ``CounterSet((...))`` constructor."""
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "CounterSet"
                and node.args
                and isinstance(node.args[0], (ast.Tuple, ast.List))):
            names: Set[str] = set()
            for element in node.args[0].elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    names.add(element.value)
            return names
    return None
