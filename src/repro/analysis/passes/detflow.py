"""DETFLOW: flow-sensitive determinism taint over the whole program.

The per-file DET00x rules flag nondeterministic *call sites*; DETFLOW
follows the *values*.  Two rules:

* **DETFLOW001 taint-reaches-sim-state** — a value originating from a
  wall clock, the host entropy pool, or the process-global RNG flows —
  possibly through project function calls and returns — into simulated
  object state (a ``self.attr`` store) or into the discrete-event
  scheduler.  This closes the two gaps DET002 leaves open by design:
  ``time.perf_counter()`` is exempt per-file (diagnostic timing is
  fine) but becomes a bug the moment its value steers the model, and a
  helper in an allowlisted module can launder a wall clock through its
  return value into seeded code.
* **DETFLOW002 unstable-wire-order** — an unsorted iteration over a
  mutable mapping attribute (``self.x.values()`` et al.) aggregated
  into an ordered collection that reaches wire encoding (``.encode()``
  / ``send*`` in the same function, or returned to a caller that
  encodes).  Dict order is insertion order, and insertion order in
  protocol tables is *event arrival order* — exactly what the
  SimSanitizer's same-timestamp shuffle perturbs.  Advertisements and
  broadcasts must sort on a protocol key instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, ProjectInfo
from repro.analysis.dataflow import TaintEngine
from repro.analysis.findings import Finding
from repro.analysis.imports import dotted_name
from repro.analysis.passes.determinism import (
    GLOBAL_RNG_FUNCTIONS,
    WALL_CLOCK_CALLS,
)
from repro.analysis.registry import ProjectPass, Rule, register_deep_pass

RULE_TAINT_STATE = Rule(
    id="DETFLOW001", name="taint-reaches-sim-state", severity="error",
    summary="wall-clock/entropy/global-RNG value flows into sim object "
            "state or the event scheduler (interprocedural)",
)
RULE_WIRE_ORDER = Rule(
    id="DETFLOW002", name="unstable-wire-order", severity="error",
    summary="unsorted mapping iteration feeds wire encoding; insertion "
            "order is event-arrival order — sort on a protocol key",
)

#: Mapping-view methods whose iteration order is insertion order.
_VIEW_METHODS = frozenset({"values", "items", "keys"})

#: Call names that put bytes on the wire (used by the escape check).
_WIRE_CALL_PREFIXES = ("send", "broadcast", "transmit", "write")


def _taint_sources() -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for name in GLOBAL_RNG_FUNCTIONS:
        sources[f"random.{name}"] = f"random.{name}()"
    for qual in WALL_CLOCK_CALLS:
        sources[qual] = f"{qual}()"
    # perf_counter is DET002-exempt as pure diagnostics; the flow rule
    # exists precisely to catch its value escaping into the model.
    for extra in ("time.perf_counter", "time.perf_counter_ns",
                  "time.process_time", "time.process_time_ns",
                  "secrets.token_bytes", "secrets.token_hex",
                  "secrets.randbits", "secrets.choice"):
        sources[extra] = f"{extra}()"
    return sources


@register_deep_pass
class DetFlowPass(ProjectPass):
    name = "detflow"
    rules = (RULE_TAINT_STATE, RULE_WIRE_ORDER)

    def check_project(self, project: ProjectInfo,
                      graph: CallGraph) -> Iterator[Finding]:
        engine = TaintEngine(project, graph, sources=_taint_sources())
        engine.run()
        for fn in project.functions.values():
            for hit in engine.source_hits(fn.qualname):
                origin = sorted(o.described() for o in hit.origins)[0]
                yield self.finding(
                    fn.module_info, hit.node, RULE_TAINT_STATE,
                    f"nondeterministic value from {origin} reaches "
                    f"{hit.target} ({hit.sink}) in {fn.qualname}; plumb a "
                    f"seeded stream or keep the value out of the model",
                )
            yield from self._wire_order(project, graph, fn)

    # ------------------------------------------------------------------
    # DETFLOW002
    # ------------------------------------------------------------------

    def _wire_order(self, project: ProjectInfo, graph: CallGraph,
                    fn: FunctionInfo) -> Iterator[Finding]:
        candidates = self._view_iterations(fn)
        if not candidates:
            return
        encodes_here = _contains_wire_call(fn.node)
        returned_names = _returned_collection_names(fn.node)
        for node, view_text, aggregate in candidates:
            if aggregate is None:
                continue
            escapes = encodes_here
            escape_hint = "wire encoding in this function"
            if not escapes and aggregate in returned_names:
                caller = self._encoding_caller(project, graph, fn)
                if caller is not None:
                    escapes = True
                    escape_hint = f"encoded by caller {caller}"
            if escapes:
                yield self.finding(
                    fn.module_info, node, RULE_WIRE_ORDER,
                    f"iteration over {view_text} in {fn.qualname} feeds "
                    f"{escape_hint} in insertion (event-arrival) order; "
                    f"wrap it in sorted(...) with an explicit protocol key",
                )

    def _view_iterations(
            self, fn: FunctionInfo
    ) -> List[Tuple[ast.AST, str, Optional[str]]]:
        """(node, view text, aggregate name) per unsorted view iteration.

        The aggregate name is the local list the loop appends to,
        ``"<expr>"`` for comprehensions/generators (always ordered
        aggregation), or None when the loop does not aggregate.
        """
        out: List[Tuple[ast.AST, str, Optional[str]]] = []
        comp_aggregates = _assigned_comprehensions(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                view = _self_mapping_view(node.iter)
                if view is not None:
                    out.append((node, view, _loop_aggregate(node)))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    view = _self_mapping_view(generator.iter)
                    if view is not None:
                        out.append((node, view,
                                    comp_aggregates.get(id(node))))
        return out

    def _encoding_caller(self, project: ProjectInfo, graph: CallGraph,
                         fn: FunctionInfo) -> Optional[str]:
        for caller in sorted(graph.callers_of(fn.qualname)):
            caller_fn = project.functions.get(caller)
            if caller_fn is not None and _contains_wire_call(caller_fn.node):
                return caller
        return None


def _self_mapping_view(node: ast.AST) -> Optional[str]:
    """Dotted text of ``self.<...>.values()``-style iterables, else None."""
    if not (isinstance(node, ast.Call) and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _VIEW_METHODS):
        return None
    base = dotted_name(node.func.value)
    if base is None or not (base == "self" or base.startswith("self.")):
        return None
    return f"{base}.{node.func.attr}()"


def _assigned_comprehensions(fn_node: ast.AST) -> Dict[int, str]:
    """id(comp node) -> local name it is assigned to (possibly through
    a ``tuple(...)`` / ``list(...)`` wrapper).  Comprehensions in any
    other position (a loop's iterable, a bare expression) do not build
    an ordered collection that escapes, and map to nothing."""
    table: Dict[int, str] = {}
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        value = node.value
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in ("tuple", "list") and value.args):
            value = value.args[0]
        if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            table[id(value)] = node.targets[0].id
    return table


def _loop_aggregate(loop: ast.For) -> Optional[str]:
    """Name of the bare local list the loop body appends into."""
    for node in ast.walk(loop):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)):
            return node.func.value.id
    return None


def _returned_collection_names(fn_node: ast.AST) -> Set[str]:
    """Locals returned directly (or via ``tuple(x)`` / ``list(x)``)."""
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in ("tuple", "list") and value.args):
            value = value.args[0]
        if isinstance(value, ast.Name):
            names.add(value.id)
    return names


def _contains_wire_call(fn_node: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "encode" or attr.startswith(_WIRE_CALL_PREFIXES):
                return True
    return False
