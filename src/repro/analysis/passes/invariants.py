"""Protocol-invariant pass: one source of truth for on-air constants.

The KISS framing bytes and AX.25 constants are protocol law; the paper's
driver and every module above it must agree on them bit-for-bit.  The
canonical values live in :mod:`repro.kiss.framing` (FEND/FESC/TFEND/
TFESC) and :mod:`repro.ax25.defs` (PIDs, control bytes, SSID masks,
address-extension bit).  This pass imports those modules — the running
truth, not a copy — and cross-checks everything else against them.

* **PROTO001 divergent-protocol-constant** — a module assigns a name
  that *is* a canonical constant (or a known alias like the SLIP
  escape set, which RFC 1055 shares byte-for-byte with KISS) to a
  different value.  ``FEND = 0xDB`` elsewhere is a wire-format bug, not
  a style choice.
* **PROTO002 rehardcoded-protocol-byte** — a bare integer literal equal
  to a KISS framing byte or an AX.25 PID appears outside the canonical
  defining modules.  Even when the value is currently right, the copy
  can't follow the definition; import the named constant.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    LintPass,
    ModuleInfo,
    Rule,
    register_pass,
)


#: Wire-format names policed by PROTO001.  Tunable defaults
#: (DEFAULT_WINDOW, DEFAULT_RETRIES, ...) are excluded: TCP legitimately
#: has its own DEFAULT_WINDOW with different semantics, and renaming a
#: tunable is a design decision, not a wire-format violation.
_WIRE_NAME_PREFIXES = ("PID_", "U_", "S_", "SSID_", "ADDR_")
_WIRE_NAMES = frozenset({
    "FEND", "FESC", "TFEND", "TFESC",
    "CONTROL_UI", "PF_BIT",
    "MAX_DIGIPEATERS", "ADDRESS_BLOCK_LEN", "CALLSIGN_MAX",
})


def _is_wire_constant(name: str) -> bool:
    return name in _WIRE_NAMES or name.startswith(_WIRE_NAME_PREFIXES)


def canonical_constants() -> Dict[str, int]:
    """Name -> value table read live from the defining modules."""
    from repro.ax25 import defs as ax25_defs
    from repro.kiss import framing as kiss_framing

    table: Dict[str, int] = {}
    for module in (kiss_framing, ax25_defs):
        for name, value in vars(module).items():
            if name.isupper() and isinstance(value, int) \
                    and not isinstance(value, bool) \
                    and _is_wire_constant(name):
                table[name] = value
    return table


#: Alternate spellings used by sibling protocols that must stay equal to
#: the canonical byte (SLIP's escape set is identical to KISS's).
ALIASES: Dict[str, str] = {
    "SLIP_END": "FEND",
    "SLIP_ESC": "FESC",
    "SLIP_ESC_END": "TFEND",
    "SLIP_ESC_ESC": "TFESC",
    "PID_IP": "PID_ARPA_IP",
    "PID_ARP": "PID_ARPA_ARP",
}

#: Literals policed by PROTO002: values where a silent re-hardcode is a
#: wire-format time bomb.  Small generic masks (0x01, 0x0F, ...) are
#: excluded on purpose — flagging every bit-twiddle would drown signal.
KISS_BYTE_VALUES = frozenset(
    {0xC0, 0xDB, 0xDC, 0xDD})  # reprolint: disable=PROTO002 -- the rule's
#   own lookup table must spell the bytes it polices; importing the
#   constants here would make the checker assume what it verifies.
PID_VALUES = frozenset(
    {0xCC, 0xCD, 0xCF})  # reprolint: disable=PROTO002 -- ditto

RULE_DIVERGENT = Rule(
    id="PROTO001", name="divergent-protocol-constant", severity="error",
    summary="module redefines a canonical protocol constant with a "
            "different value than kiss/framing.py / ax25/defs.py",
)
RULE_REHARDCODED = Rule(
    id="PROTO002", name="rehardcoded-protocol-byte", severity="warning",
    summary="bare KISS/PID byte literal outside the defining module; "
            "import the named constant instead",
)


def _int_value(node: ast.AST) -> Optional[int]:
    """Integer value of a literal expression (handles unary minus)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_value(node.operand)
        return -inner if inner is not None else None
    return None


@register_pass
class ProtocolInvariantPass(LintPass):
    """Cross-checks literals against the canonical protocol constants."""

    name = "protocol-invariants"
    rules = (RULE_DIVERGENT, RULE_REHARDCODED)

    def __init__(self) -> None:
        self._canonical = canonical_constants()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        findings: List[Finding] = []
        constant_assignment_values: List[ast.AST] = []

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                findings.extend(self._check_assignment(
                    module, node, node.targets[0].id))
                constant_assignment_values.append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name):
                findings.extend(self._check_assignment(
                    module, node, node.target.id))
                constant_assignment_values.append(node.value)

        checked = set(map(id, constant_assignment_values))
        for node in ast.walk(module.tree):
            if id(node) in checked:
                # Named constant definitions are PROTO001 territory.
                continue
            value = None
            if isinstance(node, ast.Constant):
                value = _int_value(node)
            if value is None or not self._written_in_hex(module, node):
                continue
            findings.extend(self._check_literal(module, node, value))
        return iter(findings)

    @staticmethod
    def _written_in_hex(module: ModuleInfo, node: ast.AST) -> bool:
        """True when the literal is spelled ``0x..`` in the source.

        Protocol byte re-hardcodes are written in hex; the same values
        in decimal are almost always something else entirely (FTP's
        reply code 220 is not TFEND, 192 in an IP classful-address
        threshold is not FEND).
        """
        line_index = getattr(node, "lineno", 0) - 1
        if not 0 <= line_index < len(module.lines):
            return True  # no source (synthetic tree): assume hex
        text = module.lines[line_index][getattr(node, "col_offset", 0):]
        return text[:2].lower() == "0x"

    # ------------------------------------------------------------------

    def _check_assignment(self, module: ModuleInfo, node: ast.AST,
                          name: str) -> Iterator[Finding]:
        canonical_name = ALIASES.get(name, name)
        if canonical_name not in self._canonical:
            return
        expected = self._canonical[canonical_name]
        value = _int_value(node.value)  # type: ignore[attr-defined]
        if value is None or value == expected:
            return
        source = ("kiss/framing.py" if canonical_name in
                  ("FEND", "FESC", "TFEND", "TFESC") else "ax25/defs.py")
        yield self.finding(
            module, node, RULE_DIVERGENT,
            f"{name} = 0x{value:02X} diverges from the canonical "
            f"{canonical_name} = 0x{expected:02X} in {source}; "
            "import the constant instead of redefining it",
        )

    def _check_literal(self, module: ModuleInfo, node: ast.AST,
                       value: int) -> Iterator[Finding]:
        if value in KISS_BYTE_VALUES:
            names = [name for name, val in self._canonical.items()
                     if val == value and name in
                     ("FEND", "FESC", "TFEND", "TFESC")]
            yield self.finding(
                module, node, RULE_REHARDCODED,
                f"bare literal 0x{value:02X} re-hardcodes KISS framing "
                f"byte {'/'.join(names)}; import it from "
                "repro.kiss.framing",
            )
        elif value in PID_VALUES:
            names = sorted(name for name, val in self._canonical.items()
                           if val == value and name.startswith("PID"))
            yield self.finding(
                module, node, RULE_REHARDCODED,
                f"bare literal 0x{value:02X} re-hardcodes AX.25 PID "
                f"{'/'.join(names)}; import it from repro.ax25.defs",
            )
