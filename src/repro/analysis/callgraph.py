"""Project-wide symbol table and call graph for the deep passes.

The per-file passes (PR 2) see one module at a time; the deep passes
need to know that ``stamp()`` over in ``workload/arrivals.py`` is the
``stamp`` defined in ``harness/runner.py`` and that it returns a wall
clock.  :class:`ProjectInfo` parses every module once, assigns each a
dotted name (by walking up through ``__init__.py`` packages, so the
same code works on ``src/repro`` and on synthetic test packages), and
indexes every top-level function, class, and method by qualified name.
:class:`CallGraph` then resolves direct calls — imported names,
module-local names, ``self.method()`` (including through base classes
declared in the project) — into edges between those qualified names.

Dynamic dispatch through arbitrary objects is out of scope on purpose:
an unresolved call simply contributes no edge, which keeps every deep
pass sound against false *propagation* rather than chasing precision
the AST cannot give.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.imports import ImportMap, dotted_name
from repro.analysis.registry import ModuleInfo

#: How many base-class hops ``self.method()`` resolution will climb.
_MAX_MRO_HOPS = 5


def module_dotted_name(path: Path) -> str:
    """Dotted module name for a file, walking up while packages last.

    ``src/repro/inet/rip.py`` -> ``repro.inet.rip`` because ``src`` has
    no ``__init__.py``; a synthetic ``tmp/pkg/a.py`` with package
    markers resolves to ``pkg.a`` the same way.
    """
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str                   #: ``repro.inet.rip.RipService._expire``
    module: str                     #: dotted module name
    cls: Optional[str]              #: enclosing class simple name, if any
    name: str                       #: function simple name
    node: ast.AST                   #: FunctionDef / AsyncFunctionDef
    module_info: ModuleInfo
    params: List[str] = field(default_factory=list)  #: excludes ``self``


@dataclass
class ClassInfo:
    """One class with its directly-defined methods and textual bases."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)  #: unresolved dotted text


class ProjectInfo:
    """Every parsed module of one scan, indexed for whole-program work."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.imports: Dict[str, ImportMap] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "ProjectInfo":
        project = cls()
        for module in modules:
            name = module_dotted_name(module.path)
            project.modules[name] = module
            project.imports[name] = ImportMap.collect(module.tree)
            project._index_module(name, module)
        return project

    def _index_module(self, mod_name: str, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod_name, None, node, module)
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{mod_name}.{node.name}", module=mod_name,
                    name=node.name, node=node,
                    bases=[base for base in
                           (dotted_name(b) for b in node.bases)
                           if base is not None],
                )
                self.classes[info.qualname] = info
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        fn = self._add_function(mod_name, node.name,
                                                child, module)
                        info.methods[child.name] = fn

    def _add_function(self, mod_name: str, cls_name: Optional[str],
                      node: ast.AST, module: ModuleInfo) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [arg.arg for arg in node.args.args]
        if cls_name is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        qual = (f"{mod_name}.{cls_name}.{node.name}" if cls_name
                else f"{mod_name}.{node.name}")
        info = FunctionInfo(qualname=qual, module=mod_name, cls=cls_name,
                            name=node.name, node=node, module_info=module,
                            params=params)
        self.functions[qual] = info
        return info

    # ------------------------------------------------------------------

    def resolve_name(self, mod_name: str, text: str) -> Optional[str]:
        """Project qualname a dotted text refers to inside a module.

        Resolves through the module's import table first, then against
        module-local definitions.  Returns a function or class qualname
        known to the project, or None.
        """
        imports = self.imports.get(mod_name)
        root, _, rest = text.partition(".")
        candidates = []
        if imports is not None:
            resolved = imports.resolve(root)
            if resolved is not None:
                candidates.append(f"{resolved}.{rest}" if rest else resolved)
        candidates.append(f"{mod_name}.{text}")
        for candidate in candidates:
            if candidate in self.functions or candidate in self.classes:
                return candidate
        return None

    def class_of(self, mod_name: str, cls_name: str) -> Optional[ClassInfo]:
        resolved = self.resolve_name(mod_name, cls_name)
        if resolved is not None:
            return self.classes.get(resolved)
        return None

    def lookup_method(self, cls_info: ClassInfo,
                      method: str) -> Optional[FunctionInfo]:
        """Find a method on a class or its project-known bases."""
        seen: Set[str] = set()
        frontier = [cls_info]
        for _ in range(_MAX_MRO_HOPS):
            next_frontier: List[ClassInfo] = []
            for cls in frontier:
                if cls.qualname in seen:
                    continue
                seen.add(cls.qualname)
                if method in cls.methods:
                    return cls.methods[method]
                for base_text in cls.bases:
                    base = self.class_of(cls.module, base_text)
                    if base is not None:
                        next_frontier.append(base)
            if not next_frontier:
                break
            frontier = next_frontier
        return None


class CallGraph:
    """Resolved direct-call edges between project functions."""

    def __init__(self, project: ProjectInfo) -> None:
        self.project = project
        self.edges: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for fn in self.project.functions.values():
            targets = self.edges.setdefault(fn.qualname, set())
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(node, fn.module, fn.cls)
                if callee is not None:
                    targets.add(callee)
                    self.callers.setdefault(callee, set()).add(fn.qualname)

    def resolve_call(self, call: ast.Call, mod_name: str,
                     cls_name: Optional[str]) -> Optional[str]:
        """Qualname of a call's target function, or None if unresolved.

        A resolved class reference becomes its ``__init__`` when the
        project defines one (constructor edge), else the class qualname
        itself so callers can still see the dependency.
        """
        func = call.func
        # self.method() / cls.method(): resolve inside the class.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and cls_name is not None):
            cls_info = self.project.class_of(mod_name, cls_name)
            if cls_info is not None:
                method = self.project.lookup_method(cls_info, func.attr)
                if method is not None:
                    return method.qualname
            return None
        text = dotted_name(func)
        if text is None:
            return None
        resolved = self.project.resolve_name(mod_name, text)
        if resolved is None:
            return None
        if resolved in self.project.classes:
            init = f"{resolved}.__init__"
            return init if init in self.project.functions else resolved
        return resolved

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def callers_of(self, qualname: str) -> Set[str]:
        return self.callers.get(qualname, set())
