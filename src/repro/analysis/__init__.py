"""reprolint: the repo's own static-analysis framework.

Three AST passes encode the correctness rules the reproduction depends
on — determinism (every run a pure function of its seed), sim-safety
(no host-blocking calls or counter bypasses inside the event loop), and
protocol invariants (one source of truth for KISS/AX.25 constants).
``python -m repro lint`` runs them as a CI gate.

>>> from repro.analysis import LintEngine
>>> report = LintEngine().lint_source("import time\\nt = time.time()\\n")
>>> [f.rule for f in report.new_findings]
['DET002']
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import LintEngine, LintReport, list_rules
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    PASS_REGISTRY,
    LintPass,
    ModuleInfo,
    Rule,
    register_pass,
    rule_table,
)

__all__ = [
    "Finding",
    "LintEngine",
    "LintPass",
    "LintReport",
    "ModuleInfo",
    "PASS_REGISTRY",
    "Rule",
    "list_rules",
    "load_baseline",
    "register_pass",
    "rule_table",
    "write_baseline",
]
