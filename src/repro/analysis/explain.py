"""``python -m repro lint --explain RULE``: rule rationale on demand.

Each entry pairs three things a reviewer needs when a rule fires at
them: *why the rule exists* (tied to the invariant it protects), *a
live example* — the snippet is actually linted here, so the printed
finding and its provenance chain come from the real engine, not from
prose that can rot — and *the sanctioned fix pattern*.

Rules without a curated entry still explain themselves from the
registry summary, so ``--explain`` never dead-ends.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, rule_table


@dataclass(frozen=True)
class Explanation:
    """Curated teaching material for one rule."""

    rule: str
    rationale: str       #: why the rule exists (the invariant at stake)
    example: str         #: minimal source that trips the rule
    fix: str             #: the sanctioned pattern
    #: Display path the example is linted under.  Scope-sensitive rules
    #: (OBS002 only fires under repro/scale or repro/obs) need the
    #: example to live at a path inside their scope.
    display: str = "example.py"


_EXPLANATIONS: Dict[str, Explanation] = {}


def _register(entry: Explanation) -> None:
    _EXPLANATIONS[entry.rule] = entry


_register(Explanation(
    rule="SNAP001",
    rationale="""
        The model checker (repro.check) snapshots whole worlds with
        deepcopy and branches execution from the copies.  Bound methods
        rebind through the deepcopy memo, so a scheduled self._flush in
        a snapshot points at the *copied* object — but lambdas and
        generator expressions copy by reference: their closure cells
        still point into the live world, so every "frozen" snapshot
        silently aliases the state it was meant to freeze.  OS handles
        (open files, threading primitives, sockets) either refuse to
        deepcopy or duplicate kernel objects.  Anything stored on sim
        state, or handed to the scheduler, must survive the copy.
    """,
    example="""
        class CollisionHub:
            def __init__(self, sim):
                self.pending = (f for f in [])
                self.arrival = lambda frame: self.pending
            def defer(self, sim, frame):
                sim.call_soon(lambda: self.flush(frame))
    """,
    fix="""
        Store and schedule bound methods; materialise generators::

            class CollisionHub:
                def __init__(self, sim):
                    self.pending = []
                def defer(self, sim, frame):
                    sim.call_soon(self.flush, frame, label="hub-flush")
    """,
))

_register(Explanation(
    rule="OBS002",
    rationale="""
        The sharding layer (repro/scale) and the observability layer
        (repro/obs) aggregate other layers' drop terminals and re-emit
        them across region boundaries.  The merged flight-recorder view
        reconciles per-region histograms *by reason word*: an invented
        literal in these layers splits a histogram row into two keys
        the reconciliation cannot match, so the merge silently loses
        conservation.  Every reason must be a literal from the live
        repro.obs.spans.REASONS vocabulary — the one non-literal
        allowed is forwarding a parameter named ``reason``, which keeps
        the word chosen by the layer that owned the drop.
    """,
    example="""
        class GatewaySeam:
            def relay(self, span, key):
                self.recorder.drop_key(key, 'gateway', 'GW0',
                                       'vanished_in_transit')
    """,
    fix="""
        Use the vocabulary (or forward the owning layer's reason)::

            def relay(self, span, key, reason):
                self.recorder.drop_key(key, 'gateway', 'GW0',
                                       'link_giveup')
                self.recorder.drop_key(key, 'gateway', 'GW0', reason)
    """,
    display="repro/obs/example.py",
))

_register(Explanation(
    rule="UNIT001",
    rationale="""
        The simulator clock ticks in integer microseconds; durations
        arrive from layouts and scenarios as float seconds; serial
        arithmetic speaks baud, bits, and bytes.  Adding or comparing
        across those systems is the classic ms-vs-s bug — off by a
        factor of one million with no exception raised.  The units
        lattice seeds dimensions from known APIs and naming conventions
        (``*_seconds``, ``*_us``, ``link_latency``, ``baud``) and flags
        additive arithmetic whose operands disagree.
    """,
    example="""
        class Region:
            def deadline(self, start_us, duration_seconds):
                return start_us + duration_seconds
    """,
    fix="""
        Convert at the boundary with the sanctioned converters::

            from repro.sim.clock import seconds
            return start_us + seconds(duration_seconds)
    """,
))

_register(Explanation(
    rule="UNIT002",
    rationale="""
        Some sinks demand one dimension: ``Simulator.schedule`` /
        ``.at`` take integer sim microseconds, ``Rate.tick`` takes the
        sim clock, counters take counts unless their *name* declares a
        unit (``..._us``), and a ``*_bytes`` slot must not receive a
        bit count.  The abstract interpretation follows values through
        assignments, arithmetic, and project calls — including a helper
        that forwards its parameter into the scheduler, the laundering
        case where neither function alone looks wrong.
    """,
    example="""
        class Station:
            def wait(self, pause):
                self.sim.schedule(pause, self.poll)

            def start(self, drain_seconds):
                self.wait(drain_seconds)
    """,
    fix="""
        Convert once, at the call site that owns the float::

            from repro.sim.clock import seconds
            self.wait(seconds(drain_seconds))
    """,
))

_register(Explanation(
    rule="SHARD001",
    rationale="""
        Sharded regions are re-runnable only if every region is a pure
        function of (layout, seed, region index).  Module- or
        class-level mutable state that sim code mutates — the pre-fix
        Pinger ident counter is the canonical case — makes wire bytes
        depend on how many objects the *process* ever constructed, so
        one shard re-run or a different process layout changes digests.
        Bindings that are never written (frozen constant tables,
        ``__all__``) are fine: the rule requires an observed mutation.
    """,
    example="""
        class Pinger:
            next_ident = 100

            def __init__(self, stack):
                self.ident = Pinger.next_ident
                Pinger.next_ident += 1
    """,
    fix="""
        Derive identity from owned, per-instance state::

            def __init__(self, stack):
                self.ident = 100 + len(stack.icmp_listeners)
    """,
))

_register(Explanation(
    rule="SHARD002",
    rationale="""
        Regions may exchange *bytes* across the gateway seam — never
        live objects.  An object constructed under one region's
        Simulator that lands in another region's structures or
        callbacks couples their event orders, which breaks the window
        barrier that makes sharded execution equal single-process
        execution.  The pass tracks Simulator identities per function
        and flags stores/calls that mix two of them.
    """,
    example="""
        def build(layout):
            sim_a = Simulator()
            sim_b = Simulator()
            stack_a = NetStack(sim_a)
            stack_b = NetStack(sim_b)
            stack_b.neighbors.append(stack_a)
    """,
    fix="""
        Serialize at the seam; hand the other region bytes, not objects::

            stack_b.enqueue(bytes(frame_from_a))
    """,
))

_register(Explanation(
    rule="FID001",
    rationale="""
        per_char/frame digest equivalence is gated dynamically, but the
        easiest way to break it is structural: a branch on the fidelity
        level that bumps a counter or records a span on one arm only.
        FID001 collects the instrument set emitted on every arm of a
        fidelity branch (following project helpers two hops deep) and
        demands symmetry — or total silence, which pure behavioural
        dispatch satisfies.
    """,
    example="""
        class Endpoint:
            def write(self, data):
                if self.fidelity == "frame":
                    self.instruments.bump("frames_sent")
                    self.sim.schedule(10, self.done)
                else:
                    self.sim.schedule(1, self.step)
    """,
    fix="""
        Emit the same instruments on every level (or none)::

            if self.fidelity == "frame":
                self.instruments.bump("writes")
                self.sim.schedule(10, self.done)
            else:
                self.instruments.bump("writes")
                self.sim.schedule(1, self.step)
    """,
))


def _live_findings(rule_id: str, example: str,
                   display: str = "example.py") -> List[Finding]:
    """Lint the example snippet for real and keep the rule's findings.

    Deep rules need a project index, so the snippet is wrapped in a
    one-module synthetic project; per-file rules go through
    ``lint_source``.  Either way the finding (and its provenance chain)
    is produced by the actual engine.
    """
    import ast

    from repro.analysis.callgraph import CallGraph, ProjectInfo
    from repro.analysis.engine import LintEngine
    from repro.analysis.registry import DEEP_PASS_REGISTRY

    deep_rules = {rule.id for cls in DEEP_PASS_REGISTRY
                  for rule in cls.rules}
    if rule_id not in deep_rules:
        report = LintEngine(allowlist={}).lint_source(example,
                                                      display=display)
        return [f for f in report.new_findings if f.rule == rule_id]

    module = ModuleInfo(path=Path(display), display=display,
                        source=example, tree=ast.parse(example),
                        lines=example.splitlines())
    project = ProjectInfo.build([module])
    graph = CallGraph(project)
    out: List[Finding] = []
    for cls in DEEP_PASS_REGISTRY:
        if any(rule.id == rule_id for rule in cls.rules):
            out.extend(f for f in cls().check_project(project, graph)
                       if f.rule == rule_id)
    return out


def explain_rule(rule_id: str) -> Optional[str]:
    """The full ``--explain`` text for one rule id, or None if unknown."""
    rule_id = rule_id.upper()
    table = rule_table()
    rule = table.get(rule_id)
    if rule is None:
        return None

    lines = [f"{rule.id} ({rule.name}) [{rule.severity}]",
             "", rule.summary]
    entry = _EXPLANATIONS.get(rule_id)
    if entry is None:
        lines += ["", "No curated example for this rule yet; the "
                      "summary above is the rationale of record."]
        return "\n".join(lines)

    example = textwrap.dedent(entry.example).strip("\n")
    lines += ["", "Why this rule exists:",
              textwrap.indent(
                  textwrap.fill(" ".join(
                      textwrap.dedent(entry.rationale).split()), 68),
                  "  ")]
    lines += ["", "Example that trips it:",
              textwrap.indent(example, "  ")]

    findings = _live_findings(rule_id, example, entry.display)
    if findings:
        lines += ["", "What the engine reports for that example:"]
        for finding in findings:
            lines.append(textwrap.indent(finding.render(), "  "))
    lines += ["", "Sanctioned fix:",
              textwrap.indent(textwrap.dedent(entry.fix).strip("\n"),
                              "  ")]
    return "\n".join(lines)


def explained_rules() -> List[str]:
    """Rule ids with curated explanations (for the CLI help text)."""
    return sorted(_EXPLANATIONS)
