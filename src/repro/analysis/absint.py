"""Interprocedural abstract interpretation over the units lattice.

This mirrors :mod:`repro.analysis.dataflow` structurally — one forward
walker per function, per-function summaries iterated to a project
fixpoint — but the abstract domain is the units-of-measure lattice from
:mod:`repro.analysis.units` instead of taint origin sets.  Each local
name maps to a :class:`UVal`: the best-known dimension, a bounded
provenance chain explaining *why* we believe it, and the set of the
function's own parameters whose dimension flows into it (the hook for
interprocedural propagation).

Two rule families hang off the walk:

* **UNIT001** — additive arithmetic whose operands carry two different
  concrete dimensions (``duration_seconds + link_latency`` adds float
  seconds to integer microseconds),
* **UNIT002** — a dimensioned value reaching a sink that demands a
  different dimension: scheduler delays (``Simulator.schedule`` /
  ``.at``), ``Rate.tick``'s clock argument, counter bumps whose name
  does not declare a unit, the ``seconds()`` converter, and
  bytes/bits-confused stores.

Sink obligations propagate through calls: a helper that forwards its
parameter into ``sim.schedule`` exports ``params_to_sink``, and the
caller-side check fires when a ``sim_seconds`` value is passed into
that parameter — the ms-vs-s *laundering* case where neither function
alone looks wrong.

Soundness posture matches the taint engine: unresolved calls and
unrepresentable arithmetic drop to ``unknown`` (silence), so every
report rests on two concrete, conflicting facts with a printable
provenance chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, ProjectInfo
from repro.analysis.imports import ImportMap, call_qualname, dotted_name
from repro.analysis import units
from repro.analysis.units import MIXED, UNKNOWN

#: Fixpoint safety valve (mirrors dataflow's; settles in 2-3 here too).
_MAX_ITERATIONS = 10

#: Provenance chains are evidence, not stack traces.
_MAX_PROVENANCE = 5

#: Builtins whose result keeps the dimension of their arguments.
_PASSTHROUGH_BUILTINS = frozenset(
    {"int", "float", "round", "abs", "max", "min", "sum"})


@dataclass(frozen=True)
class UVal:
    """Abstract value: dimension + evidence + parameter dependence."""

    dim: str = UNKNOWN
    prov: Tuple[str, ...] = ()
    params: FrozenSet[int] = frozenset()

    def with_step(self, step: str) -> "UVal":
        if len(self.prov) >= _MAX_PROVENANCE:
            return self
        return UVal(dim=self.dim, prov=self.prov + (step,),
                    params=self.params)


_TOP_UNKNOWN = UVal()


def _join_vals(a: UVal, b: UVal) -> UVal:
    dim = units.join(a.dim, b.dim)
    # Keep the evidence of whichever side established the joined dim.
    if dim == a.dim and a.prov:
        prov = a.prov
    elif dim == b.dim and b.prov:
        prov = b.prov
    else:
        prov = (a.prov + b.prov)[:_MAX_PROVENANCE]
    return UVal(dim=dim, prov=prov, params=a.params | b.params)


@dataclass(frozen=True)
class SinkObligation:
    """What a callee does with one of its parameters."""

    kind: str                    #: ``scheduler`` | ``tick`` | ``convert``
    target: str                  #: printable sink, e.g. ``.schedule() delay``
    forbidden: FrozenSet[str]    #: dimensions that must not arrive here


@dataclass(frozen=True)
class UnitHit:
    """One rule violation found inside one function."""

    node: ast.AST
    rule: str                    #: ``UNIT001`` or ``UNIT002``
    message: str
    provenance: Tuple[str, ...]

    def key(self) -> tuple:
        return (getattr(self.node, "lineno", 0),
                getattr(self.node, "col_offset", 0),
                self.rule, self.message)


@dataclass(frozen=True)
class UnitSummary:
    """Interprocedural facts about one function."""

    returns_dim: str = UNKNOWN
    returns_params: FrozenSet[int] = frozenset()
    returns_prov: Tuple[str, ...] = ()
    params_to_sink: Mapping[int, SinkObligation] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, UnitSummary)
                and self.returns_dim == other.returns_dim
                and self.returns_params == other.returns_params
                and dict(self.params_to_sink) == dict(other.params_to_sink))


class UnitEngine:
    """Runs the per-function walk to a whole-project fixpoint."""

    def __init__(self, project: ProjectInfo, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, UnitSummary] = {}
        self._hits: Dict[str, List[UnitHit]] = {}

    def run(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for fn in self.project.functions.values():
                walker = _UnitWalker(self, fn)
                walker.run()
                summary = walker.summary()
                if self.summaries.get(fn.qualname) != summary:
                    self.summaries[fn.qualname] = summary
                    changed = True
                self._hits[fn.qualname] = walker.deduped_hits()
            if not changed:
                break

    def hits(self, qualname: str) -> List[UnitHit]:
        return self._hits.get(qualname, [])


class _UnitWalker:
    """One forward pass over one function body."""

    def __init__(self, engine: UnitEngine, fn: FunctionInfo) -> None:
        self.engine = engine
        self.fn = fn
        self.imports: ImportMap = engine.project.imports.get(
            fn.module, ImportMap())
        self.env: Dict[str, UVal] = {}
        for index, name in enumerate(fn.params):
            dim = units.unit_for_name(name)
            prov = ((f"param '{name}' seeds {dim} (name convention)",)
                    if dim != UNKNOWN else ())
            self.env[name] = UVal(dim=dim, prov=prov,
                                  params=frozenset({index}))
        self.hits: List[UnitHit] = []
        self.returns: UVal = _TOP_UNKNOWN
        self.params_to_sink: Dict[int, SinkObligation] = {}

    # -- driver --------------------------------------------------------

    def run(self) -> None:
        self._scan_block(getattr(self.fn.node, "body", []))

    def summary(self) -> UnitSummary:
        returned = self.returns
        dim = returned.dim if returned.dim != MIXED else UNKNOWN
        return UnitSummary(returns_dim=dim,
                           returns_params=returned.params,
                           returns_prov=returned.prov,
                           params_to_sink=dict(self.params_to_sink))

    def deduped_hits(self) -> List[UnitHit]:
        seen = set()
        out = []
        for hit in self.hits:
            if hit.key() in seen:
                continue
            seen.add(hit.key())
            out.append(hit)
        return out

    # -- statements ----------------------------------------------------

    def _scan_block(self, statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            self._scan_statement(statement)

    def _scan_statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(node, ast.Assign):
            value = self._expr(node.value)
            for target in node.targets:
                self._assign(target, value, node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._expr(node.value), node)
        elif isinstance(node, ast.AugAssign):
            value = self._binop_value(node.op, self._read(node.target),
                                      self._expr(node.value), node)
            self._assign(node.target, value, node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.returns = _join_vals(self.returns,
                                          self._expr(node.value))
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            before = dict(self.env)
            self._scan_block(node.body)
            after_body = self.env
            self.env = before
            self._scan_block(node.orelse)
            self._merge(after_body)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_val = self._expr(node.iter)
            element = UVal(dim=iter_val.dim
                           if iter_val.dim in units.TIME_DIMENSIONS
                           else UNKNOWN,
                           prov=iter_val.prov, params=iter_val.params)
            for _ in range(2):
                self._assign(node.target, element, node)
                self._scan_block(node.body)
            self._scan_block(node.orelse)
        elif isinstance(node, ast.While):
            for _ in range(2):
                self._expr(node.test)
                self._scan_block(node.body)
            self._scan_block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, node)
            self._scan_block(node.body)
        elif isinstance(node, ast.Try):
            self._scan_block(node.body)
            for handler in node.handlers:
                self._scan_block(handler.body)
            self._scan_block(node.orelse)
            self._scan_block(node.finalbody)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _merge(self, other: Dict[str, UVal]) -> None:
        for name, value in other.items():
            if name in self.env:
                self.env[name] = _join_vals(self.env[name], value)
            else:
                self.env[name] = value

    # -- assignment targets --------------------------------------------

    def _assign(self, target: ast.expr, value: UVal,
                statement: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            self._check_declared_store(target, target.id, value, statement)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, _TOP_UNKNOWN, statement)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, _TOP_UNKNOWN, statement)
        elif isinstance(target, ast.Attribute):
            self._check_declared_store(target, target.attr, value, statement)

    def _check_declared_store(self, node: ast.AST, name: str, value: UVal,
                              statement: ast.stmt) -> None:
        """UNIT002: a store into a name whose spelling declares a unit.

        Only the two confusion families the repo actually risks are
        flagged — a time dimension stored under a *different* time
        dimension's name (the ms-vs-s bug), and bits/bytes swaps — so
        generically-named stores stay silent.
        """
        declared = units.unit_for_name(name)
        if declared == UNKNOWN or value.dim == UNKNOWN \
                or value.dim == declared or value.dim == MIXED:
            return
        pair = {declared, value.dim}
        time_swap = pair <= units.TIME_DIMENSIONS
        size_swap = pair == {"bits", "bytes"}
        if not (time_swap or size_swap):
            return
        self.hits.append(UnitHit(
            node=statement, rule="UNIT002",
            message=(f"store into '{name}' (declared {declared}) receives "
                     f"a {value.dim} value; convert explicitly at the "
                     "boundary instead of renaming the unit"),
            provenance=value.prov + (f"stored into '{name}' "
                                     f"declared {declared}",),
        ))

    def _read(self, target: ast.expr) -> UVal:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, _TOP_UNKNOWN)
        return _TOP_UNKNOWN

    # -- expressions ---------------------------------------------------

    def _expr(self, node: Optional[ast.expr]) -> UVal:
        if node is None:
            return _TOP_UNKNOWN
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._binop_value(node.op, self._expr(node.left),
                                     self._expr(node.right), node)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return _join_vals(self._expr(node.body), self._expr(node.orelse))
        if isinstance(node, ast.BoolOp):
            out = _TOP_UNKNOWN
            for value in node.values:
                out = _join_vals(out, self._expr(value))
            return out
        if isinstance(node, ast.Compare):
            operands = [self._expr(node.left)]
            operands += [self._expr(comp) for comp in node.comparators]
            self._check_comparison(node, operands)
            return _TOP_UNKNOWN  # booleans are dimensionless
        if isinstance(node, ast.Subscript):
            container = self._expr(node.value)
            self._expr(node.slice)
            # Containers named for a time unit hold timestamps; other
            # element types (a byte of a buffer, a dict value) are not
            # recoverable from the name, so they stay unknown.
            if container.dim in units.TIME_DIMENSIONS:
                return UVal(dim=container.dim, prov=container.prov,
                            params=container.params)
            return _TOP_UNKNOWN
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return _TOP_UNKNOWN
        if isinstance(node, ast.Constant):
            return _TOP_UNKNOWN
        out = _TOP_UNKNOWN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
        return out

    def _name(self, node: ast.Name) -> UVal:
        if node.id in self.env:
            return self.env[node.id]
        # A module-level constant, possibly imported: SECOND, MS, ...
        resolved = self.imports.resolve(node.id)
        if resolved is not None and resolved in units.NAME_SEEDS:
            dim = units.NAME_SEEDS[resolved]
            return UVal(dim=dim, prov=(f"{resolved} is {dim}",))
        dim = units.unit_for_name(node.id)
        if dim != UNKNOWN:
            return UVal(dim=dim,
                        prov=(f"name '{node.id}' seeds {dim}",))
        return _TOP_UNKNOWN

    def _attribute(self, node: ast.Attribute) -> UVal:
        self._expr(node.value)
        text = dotted_name(node)
        if text is not None:
            root, _, rest = text.partition(".")
            base = self.imports.resolve(root)
            if base is not None and rest:
                qual = f"{base}.{rest}"
                if qual in units.NAME_SEEDS:
                    dim = units.NAME_SEEDS[qual]
                    return UVal(dim=dim, prov=(f"{qual} is {dim}",))
        dim = units.unit_for_name(node.attr)
        if dim != UNKNOWN:
            receiver = (node.value.id
                        if isinstance(node.value, ast.Name) else "<expr>")
            return UVal(dim=dim, prov=(
                f"{receiver}.{node.attr} seeds {dim}",))
        return _TOP_UNKNOWN

    # -- arithmetic ----------------------------------------------------

    def _binop_value(self, op: ast.operator, left: UVal, right: UVal,
                     node: ast.AST) -> UVal:
        if isinstance(op, (ast.Add, ast.Sub)):
            if units.add_conflict(left.dim, right.dim):
                word = "+" if isinstance(op, ast.Add) else "-"
                self.hits.append(UnitHit(
                    node=node, rule="UNIT001",
                    message=(f"arithmetic mixes {left.dim} {word} "
                             f"{right.dim}; convert one side through "
                             "repro.sim.clock before combining"),
                    provenance=(left.prov + right.prov
                                + (f"mixed as {left.dim} {word} "
                                   f"{right.dim}",))[:_MAX_PROVENANCE + 2],
                ))
            dim = units.add_result(left.dim, right.dim)
        elif isinstance(op, ast.Mult):
            dim = units.mul_result(left.dim, right.dim)
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            dim = units.div_result(left.dim, right.dim)
        else:
            dim = UNKNOWN
        prov = (left.prov + right.prov)[:_MAX_PROVENANCE]
        params = left.params | right.params
        if dim == UNKNOWN:
            # The result carries no dimension, so the evidence and the
            # parameter dependence die with it.
            return _TOP_UNKNOWN
        return UVal(dim=dim, prov=prov, params=params)

    def _check_comparison(self, node: ast.Compare,
                          operands: List[UVal]) -> None:
        """UNIT001 for ``a < b`` comparing two different time dims."""
        dims = [v for v in operands if v.dim in units.TIME_DIMENSIONS]
        for index in range(len(dims) - 1):
            a, b = dims[index], dims[index + 1]
            if a.dim != b.dim:
                self.hits.append(UnitHit(
                    node=node, rule="UNIT001",
                    message=(f"comparison mixes {a.dim} and {b.dim}; "
                             "convert one side through repro.sim.clock "
                             "before comparing"),
                    provenance=(a.prov + b.prov
                                + (f"compared {a.dim} vs {b.dim}",)),
                ))

    # -- calls ---------------------------------------------------------

    def _call(self, node: ast.Call) -> UVal:
        arg_vals = [self._expr(arg) for arg in node.args]
        for keyword in node.keywords:
            self._expr(keyword.value)

        self._check_sinks(node, arg_vals)

        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "len":
                return self._len_call(node)
            if func.id in _PASSTHROUGH_BUILTINS:
                out = _TOP_UNKNOWN
                for value in arg_vals:
                    out = _join_vals(out, value)
                if out.dim == MIXED:
                    return _TOP_UNKNOWN
                return out

        qual = call_qualname(node, self.imports)
        if qual is not None and qual in units.CALL_SEEDS:
            dim = units.CALL_SEEDS[qual]
            return UVal(dim=dim, prov=(f"{qual}() returns {dim}",))

        resolved = self.engine.graph.resolve_call(node, self.fn.module,
                                                  self.fn.cls)
        if resolved is not None:
            summary = self.engine.summaries.get(resolved)
            if summary is not None:
                self._check_callee_obligations(node, resolved, summary,
                                               arg_vals)
                out = UVal(dim=summary.returns_dim,
                           prov=tuple(f"{step} (via {resolved})"
                                      for step in summary.returns_prov[:2]))
                for index in summary.returns_params:
                    if index < len(arg_vals):
                        out = _join_vals(out, arg_vals[index])
                if out.dim in (MIXED,):
                    return _TOP_UNKNOWN
                return out
        return _TOP_UNKNOWN

    def _len_call(self, node: ast.Call) -> UVal:
        argument = node.args[0] if node.args else None
        name = dotted_name(argument) if argument is not None else None
        dim = units.len_unit(name)
        label = name or "<expr>"
        return UVal(dim=dim, prov=(f"len({label}) is {dim}",))

    # -- sinks ---------------------------------------------------------

    def _check_sinks(self, node: ast.Call, arg_vals: List[UVal]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # ``seconds(x)`` converter called as a bare name.
            qual = call_qualname(node, self.imports)
            if qual == "repro.sim.clock.seconds" and arg_vals:
                self._apply_sink(node, arg_vals[0], SinkObligation(
                    kind="convert", target="clock.seconds() argument",
                    forbidden=frozenset({"sim_us", "bytes", "bits",
                                         "baud"})))
            return
        if func.attr in units.SCHEDULER_SINKS and arg_vals:
            self._apply_sink(node, arg_vals[0], SinkObligation(
                kind="scheduler",
                target=f".{func.attr}() delay/time argument",
                forbidden=units.SCHEDULER_FORBIDDEN))
        elif func.attr == "tick" and arg_vals:
            self._apply_sink(node, arg_vals[0], SinkObligation(
                kind="tick", target=".tick() clock argument",
                forbidden=units.TICK_FORBIDDEN))
        elif func.attr == "bump" and len(node.args) >= 2:
            counter = node.args[0]
            amount = arg_vals[1]
            if (isinstance(counter, ast.Constant)
                    and isinstance(counter.value, str)
                    and amount.dim in units.TIME_DIMENSIONS
                    and not counter.value.endswith(
                        units.COUNTER_DECLARED_SUFFIXES)):
                self.hits.append(UnitHit(
                    node=node, rule="UNIT002",
                    message=(f"{amount.dim} value bumped into counter "
                             f"'{counter.value}' whose name declares no "
                             "unit; rename the counter with a _us/_seconds "
                             "suffix or bump a plain count"),
                    provenance=amount.prov + (
                        f"bumped into counter '{counter.value}'",),
                ))

    def _apply_sink(self, node: ast.Call, value: UVal,
                    obligation: SinkObligation) -> None:
        if value.dim in obligation.forbidden:
            self.hits.append(UnitHit(
                node=node, rule="UNIT002",
                message=(f"{value.dim} value flows into "
                         f"{obligation.target}, which requires "
                         "integer sim microseconds"
                         if obligation.kind != "convert" else
                         f"{value.dim} value flows into "
                         f"{obligation.target}, which expects float "
                         "seconds"),
                provenance=value.prov + (f"reaches {obligation.target}",),
            ))
        # Export the obligation for callers passing through a parameter.
        for index in value.params:
            self.params_to_sink.setdefault(index, obligation)

    def _check_callee_obligations(self, node: ast.Call, callee: str,
                                  summary: UnitSummary,
                                  arg_vals: List[UVal]) -> None:
        for index, obligation in summary.params_to_sink.items():
            if index >= len(arg_vals):
                continue
            value = arg_vals[index]
            chained = SinkObligation(
                kind=obligation.kind,
                target=f"{callee} -> {obligation.target}",
                forbidden=obligation.forbidden)
            self._apply_sink_via_call(node, value, chained, index, callee)

    def _apply_sink_via_call(self, node: ast.Call, value: UVal,
                             obligation: SinkObligation, index: int,
                             callee: str) -> None:
        if value.dim in obligation.forbidden:
            self.hits.append(UnitHit(
                node=node, rule="UNIT002",
                message=(f"{value.dim} value passed as argument "
                         f"{index} of {callee} reaches "
                         f"{obligation.target.split(' -> ')[-1]} "
                         "unconverted; convert at this call site"),
                provenance=value.prov + (
                    f"argument {index} of {callee}",
                    f"reaches {obligation.target.split(' -> ')[-1]}"),
            ))
        for param in value.params:
            self.params_to_sink.setdefault(param, obligation)
