"""Baseline files: grandfather old findings, gate only on new ones.

A baseline is a checked-in JSON file of finding fingerprints.  Findings
whose fingerprint appears in the baseline are reported separately and do
not fail the run, so the lint gate can be turned on before the last
legacy violation is fixed.  Fingerprints are line-insensitive (file +
rule + message), surviving unrelated edits that move code around.

The repo convention is an *empty* baseline at ``lint-baseline.json`` —
every finding fixed or inline-suppressed with justification — but the
mechanism is kept so future passes can land strict-by-default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Union

from repro.analysis.findings import Finding

#: Bump when the baseline layout changes incompatibly.
BASELINE_SCHEMA = 1

#: Conventional path, relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for unreadable or wrong-schema baseline files."""


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Fingerprints recorded in ``path``; empty set if it is absent."""
    path = Path(path)
    if not path.exists():
        return set()
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) or "findings" not in document:
        raise BaselineError(f"baseline {path} lacks a 'findings' list")
    if document.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {document.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}")
    fingerprints: Set[str] = set()
    for entry in document["findings"]:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
        else:
            raise BaselineError(f"unintelligible baseline entry {entry!r}")
    return fingerprints


def write_baseline(path: Union[str, Path],
                   findings: Iterable[Finding]) -> Path:
    """Record ``findings`` as the new grandfathered set."""
    entries: List[dict] = [
        {
            "fingerprint": finding.fingerprint(),
            "file": finding.file,
            "rule": finding.rule,
            "message": finding.message,
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    path = Path(path)
    path.write_text(json.dumps(
        {"schema": BASELINE_SCHEMA, "findings": entries},
        indent=2, sort_keys=True) + "\n")
    return path
