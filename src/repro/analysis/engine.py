"""The reprolint engine: walk files, run passes, filter, report.

Pipeline per run:

1. collect ``*.py`` files under the given paths (skipping caches),
2. parse each once into a :class:`~repro.analysis.registry.ModuleInfo`,
3. run every registered pass over every module,
4. drop findings covered by the built-in path allowlist (places whose
   *job* is the flagged construct, e.g. ``sim/rand.py`` owns the RNG),
5. drop findings suppressed inline with ``# reprolint: disable=RULE``,
6. split what remains into new vs baselined,
7. render text or JSON; callers gate on ``report.new_findings``.

Inline suppressions are per-line and per-rule::

    frozen = time.time()  # reprolint: disable=DET002 -- host wall time
                          #   is part of the *report*, not the model

``disable=all`` silences every rule on that line.  Anything after the
rule list is free-form justification (encouraged; reviewers read it).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.callgraph import CallGraph, ProjectInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    DEEP_PASS_REGISTRY,
    PASS_REGISTRY,
    LintPass,
    ModuleInfo,
    ProjectPass,
    rule_table,
)

# Importing the package registers the built-in passes.
import repro.analysis.passes  # noqa: F401  (import for side effect)

#: ``# reprolint: disable=DET001,SIM002`` or ``disable=all``.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+?)(?:\s+--.*)?$")

#: Paths whose findings for a given rule are by-design, not bugs.  The
#: patterns match the end of a posix path.  Keep this list short and
#: justified: anything else goes through inline suppressions so the
#: reasoning sits next to the code.
DEFAULT_ALLOWLIST: Dict[str, Sequence[str]] = {
    # sim/rand.py *is* the sanctioned wrapper around `random`.
    "DET001": ("*/repro/sim/rand.py",),
    # The harness runs outside the simulated universe: it forks worker
    # processes, writes BENCH_*.json, and reads wall clocks for the
    # diagnostic `runtime` block the results schema excludes from
    # reproducibility comparisons.
    "SIM001": ("*/repro/harness/*", "*/repro/analysis/*",
               "*/repro/__main__.py"),
    # Same boundary for the flow-sensitive variant: wall-clock values
    # stored by the harness/runner are diagnostic metadata by design.
    # The model checker's explorer sits on the same side of that
    # boundary: it reads the host clock only for its own wall budget
    # and throughput report, never for anything a world fingerprints.
    "DETFLOW001": ("*/repro/harness/*", "*/repro/analysis/*",
                   "*/repro/__main__.py", "*/repro/sim/rand.py",
                   "*/repro/sim/sanitizer.py",
                   "*/repro/check/explorer.py"),
    # CLI front doors and operator tools print to a terminal on
    # purpose; everything simulated must speak through the tracer.
    "OBS001": ("*/repro/__main__.py", "*/repro/analysis/*",
               "*/repro/tools/*", "*/repro/harness/*"),
    # Snapshot safety binds only what the model checker deepcopies:
    # simulated objects.  Harness workers, analysis tooling, and CLI
    # front doors are never captured, so their lambdas are harmless.
    "SNAP001": ("*/repro/harness/*", "*/repro/analysis/*",
                "*/repro/__main__.py", "*/repro/tools/*"),
    # The lint registries are decorator-populated module lists by
    # design, and the harness/tools run outside the simulated universe
    # (process-global caches there never reach a shard's wire bytes).
    "SHARD001": ("*/repro/analysis/*", "*/repro/tools/*"),
}


@dataclass
class LintReport:
    """Everything one engine run learned."""

    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    allowlisted: int = 0
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: deep-pass name -> wall seconds (populated only under ``deep``).
    deep_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when new findings (or unparseable files)."""
        return 1 if (self.new_findings or self.parse_errors) else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "summary": {
                "files_scanned": self.files_scanned,
                "new": len(self.new_findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "allowlisted": self.allowlisted,
                "parse_errors": len(self.parse_errors),
            },
            "deep_timings": {name: round(seconds, 4) for name, seconds
                             in sorted(self.deep_timings.items())},
            "findings": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "parse_errors": list(self.parse_errors),
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.new_findings]
        lines.extend(f"{path}: PARSE [error] {message}"
                     for path, message in
                     (entry.split(": ", 1) for entry in self.parse_errors))
        summary = (f"{self.files_scanned} files scanned: "
                   f"{len(self.new_findings)} new finding(s), "
                   f"{len(self.baselined)} baselined, "
                   f"{self.suppressed} suppressed, "
                   f"{self.allowlisted} allowlisted")
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def parse_suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """1-based line number -> set of rule ids disabled on that line."""
    table: Dict[int, Set[str]] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _SUPPRESSION_RE.search(line)
        if not match:
            continue
        rules = {token.strip().upper() for token in
                 match.group(1).split(",") if token.strip()}
        if rules:
            table[index] = rules
    return table


def _is_suppressed(finding: Finding,
                   suppressions: Dict[int, Set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return finding.rule.upper() in rules or "ALL" in rules or "*" in rules


def _is_allowlisted(finding: Finding, path: Path,
                    allowlist: Dict[str, Sequence[str]]) -> bool:
    patterns = allowlist.get(finding.rule, ())
    posix = path.as_posix()
    return any(fnmatch.fnmatch(posix, pattern) for pattern in patterns)


def collect_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Python files under ``paths`` (files pass through), sorted."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


class LintEngine:
    """Runs registered passes over a file set and filters the output."""

    def __init__(self,
                 passes: Optional[Sequence[LintPass]] = None,
                 allowlist: Optional[Dict[str, Sequence[str]]] = None,
                 baseline: Optional[Set[str]] = None,
                 deep: bool = False,
                 deep_passes: Optional[Sequence[ProjectPass]] = None) -> None:
        self.passes: List[LintPass] = (list(passes) if passes is not None
                                       else [cls() for cls in PASS_REGISTRY])
        self.allowlist = (allowlist if allowlist is not None
                          else DEFAULT_ALLOWLIST)
        self.baseline = baseline or set()
        self.deep = deep
        self.deep_passes: List[ProjectPass] = (
            list(deep_passes) if deep_passes is not None
            else [cls() for cls in DEEP_PASS_REGISTRY])

    def lint_paths(self, paths: Iterable[Union[str, Path]],
                   display_root: Optional[Path] = None) -> LintReport:
        """Lint every python file under ``paths``."""
        report = LintReport()
        modules: List[ModuleInfo] = []
        for path in collect_files(paths):
            module = self._lint_file(path, report, display_root)
            if module is not None:
                modules.append(module)
        if self.deep:
            self._run_deep_passes(modules, report)
        report.new_findings.sort(key=Finding.sort_key)
        report.baselined.sort(key=Finding.sort_key)
        return report

    def lint_source(self, source: str, display: str = "<string>") -> LintReport:
        """Lint an in-memory snippet (the unit-test entry point)."""
        report = LintReport()
        module = ModuleInfo(path=Path(display), display=display,
                            source=source, tree=ast.parse(source),
                            lines=source.splitlines())
        self._run_passes(module, report)
        report.files_scanned = 1
        report.new_findings.sort(key=Finding.sort_key)
        return report

    # ------------------------------------------------------------------

    def _lint_file(self, path: Path, report: LintReport,
                   display_root: Optional[Path]) -> Optional[ModuleInfo]:
        display = path.as_posix()
        if display_root is not None:
            try:
                display = path.resolve().relative_to(
                    display_root.resolve()).as_posix()
            except ValueError:
                pass
        try:
            module = ModuleInfo.parse(path, display)
        except SyntaxError as exc:
            report.parse_errors.append(f"{display}: {exc.msg} "
                                       f"(line {exc.lineno})")
            return None
        report.files_scanned += 1
        self._run_passes(module, report)
        return module

    def _run_deep_passes(self, modules: List[ModuleInfo],
                         report: LintReport) -> None:
        """Build the project index once, then run every deep pass.

        Deep findings go through the same allowlist / suppression /
        baseline pipeline as per-file findings; the module a finding
        lands in is looked up by its display path so inline
        ``# reprolint: disable=...`` comments keep working.
        """
        import time as _time  # perf_counter only: diagnostic timings

        build_start = _time.perf_counter()
        project = ProjectInfo.build(modules)
        graph = CallGraph(project)
        report.deep_timings["project-index"] = (_time.perf_counter()
                                                - build_start)
        by_display = {module.display: module for module in modules}
        suppression_cache: Dict[str, Dict[int, Set[str]]] = {}
        for deep_pass in self.deep_passes:
            pass_start = _time.perf_counter()
            for finding in deep_pass.check_project(project, graph):
                module = by_display.get(finding.file)
                if module is None:
                    report.new_findings.append(finding)
                    continue
                if finding.file not in suppression_cache:
                    suppression_cache[finding.file] = parse_suppressions(
                        module.lines)
                if _is_allowlisted(finding, module.path, self.allowlist):
                    report.allowlisted += 1
                elif _is_suppressed(finding, suppression_cache[finding.file]):
                    report.suppressed += 1
                elif finding.fingerprint() in self.baseline:
                    report.baselined.append(finding)
                else:
                    report.new_findings.append(finding)
            report.deep_timings[deep_pass.name] = (_time.perf_counter()
                                                   - pass_start)

    def _run_passes(self, module: ModuleInfo, report: LintReport) -> None:
        suppressions = parse_suppressions(module.lines)
        for lint_pass in self.passes:
            for finding in lint_pass.check(module):
                if _is_allowlisted(finding, module.path, self.allowlist):
                    report.allowlisted += 1
                elif _is_suppressed(finding, suppressions):
                    report.suppressed += 1
                elif finding.fingerprint() in self.baseline:
                    report.baselined.append(finding)
                else:
                    report.new_findings.append(finding)


def list_rules() -> str:
    """Human-readable table of every registered rule."""
    lines = []
    for rule_id, rule in sorted(rule_table().items()):
        lines.append(f"{rule_id}  {rule.name:<32} [{rule.severity:>7}]  "
                     f"{rule.summary}")
    return "\n".join(lines)
