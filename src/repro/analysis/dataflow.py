"""Forward dataflow/taint engine over function ASTs.

The lattice is small on purpose: each local name maps to a *set of
origins* (powerset lattice, join = union), where an origin is either a
true nondeterminism source (``time.time()`` observed somewhere along
the chain) or one of the function's own parameters.  Parameter origins
never become findings directly — they exist so a fixpoint over the
whole project can compute per-function summaries:

* ``returns`` — origins that can flow into a return value,
* ``params_to_state`` — parameter indices whose value can reach sim
  object state (a ``self.attr`` store or a scheduler argument), with
  the attribute/callee it reaches,

and the caller-side analysis can then turn "I passed a tainted value
into parameter 2 of ``netstack.NetStack.set_stamp``" into a finding at
the call site.

Control flow is approximated, not solved exactly: branches join by
union, loop bodies are scanned twice (enough for the loop-carried
assignments this codebase writes), and attribute state is deliberately
untracked — a taint *dies* at the ``self.attr`` store, which is
exactly the point where DETFLOW reports it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, ProjectInfo
from repro.analysis.imports import ImportMap, call_qualname

#: Method names that hand a value to the discrete-event scheduler.
SCHEDULER_METHODS = frozenset({"schedule", "at", "call_soon", "call_at"})

#: Fixpoint safety valve; summaries for this codebase settle in 2-3.
_MAX_ITERATIONS = 10


@dataclass(frozen=True)
class Origin:
    """Where a tainted value ultimately came from."""

    kind: str       #: ``source`` (true nondeterminism) or ``param``
    detail: str     #: e.g. ``time.perf_counter()`` or the param name
    line: int = 0   #: line of the source call (param origins: 0)
    param: int = -1  #: parameter index for ``param`` origins
    via: str = ""   #: qualname chain hint for the report

    def described(self) -> str:
        chain = f" via {self.via}" if self.via else ""
        return f"{self.detail}{chain}"


Taint = FrozenSet[Origin]
_CLEAN: Taint = frozenset()


@dataclass(frozen=True)
class SinkHit:
    """A tainted value reaching sim state, with the evidence."""

    node: ast.AST          #: the store / call the taint reached
    sink: str              #: ``state-store`` | ``event-schedule`` | ``call-arg``
    target: str            #: attribute name, scheduler method, or callee
    origins: Taint


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts about one function."""

    returns: Taint = _CLEAN
    params_to_state: Mapping[int, str] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FunctionSummary)
                and self.returns == other.returns
                and dict(self.params_to_state) == dict(other.params_to_state))


class TaintEngine:
    """Runs the per-function analysis to a whole-project fixpoint."""

    def __init__(self, project: ProjectInfo, graph: CallGraph,
                 sources: Mapping[str, str]) -> None:
        """``sources`` maps qualified call names to a short description."""
        self.project = project
        self.graph = graph
        self.sources = dict(sources)
        self.summaries: Dict[str, FunctionSummary] = {}
        self._hits: Dict[str, List[SinkHit]] = {}

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Iterate summaries to fixpoint, then record final sink hits."""
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for fn in self.project.functions.values():
                summary, hits = self._analyze(fn)
                if self.summaries.get(fn.qualname) != summary:
                    self.summaries[fn.qualname] = summary
                    changed = True
                self._hits[fn.qualname] = hits
            if not changed:
                break

    def hits(self, qualname: str) -> List[SinkHit]:
        """Sink hits of one function (source origins only are findings)."""
        return self._hits.get(qualname, [])

    def source_hits(self, qualname: str) -> List[SinkHit]:
        """Sink hits carrying at least one true-source origin."""
        out = []
        for hit in self.hits(qualname):
            sources = frozenset(o for o in hit.origins if o.kind == "source")
            if sources:
                out.append(replace(hit, origins=sources))
        return out

    # ------------------------------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> Tuple[FunctionSummary,
                                                  List[SinkHit]]:
        walker = _FunctionWalker(self, fn)
        walker.run()
        return walker.summary(), walker.hits


class _FunctionWalker:
    """One forward pass over one function body."""

    def __init__(self, engine: TaintEngine, fn: FunctionInfo) -> None:
        self.engine = engine
        self.fn = fn
        self.imports: ImportMap = engine.project.imports.get(fn.module,
                                                             ImportMap())
        self.env: Dict[str, Taint] = {
            name: frozenset({Origin(kind="param", detail=name, param=index)})
            for index, name in enumerate(fn.params)
        }
        self.hits: List[SinkHit] = []
        self.returns: Set[Origin] = set()
        self.params_to_state: Dict[int, str] = {}

    # -- driver --------------------------------------------------------

    def run(self) -> None:
        body = getattr(self.fn.node, "body", [])
        self._scan_block(body)

    def summary(self) -> FunctionSummary:
        return FunctionSummary(returns=frozenset(self.returns),
                               params_to_state=dict(self.params_to_state))

    # -- statements ----------------------------------------------------

    def _scan_block(self, statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            self._scan_statement(statement)

    def _scan_statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(node, ast.Assign):
            taint = self._expr(node.value)
            for target in node.targets:
                self._assign(target, taint)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._expr(node.value))
        elif isinstance(node, ast.AugAssign):
            taint = self._expr(node.value) | self._read(node.target)
            self._assign(node.target, taint)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                taint = self._expr(node.value)
                self.returns |= taint
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            before = dict(self.env)
            self._scan_block(node.body)
            after_body = self.env
            self.env = before
            self._scan_block(node.orelse)
            self._merge(after_body)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_taint = self._expr(node.iter)
            # Two passes approximate the loop fixpoint.
            for _ in range(2):
                self._assign(node.target, iter_taint)
                self._scan_block(node.body)
            self._scan_block(node.orelse)
        elif isinstance(node, ast.While):
            for _ in range(2):
                self._expr(node.test)
                self._scan_block(node.body)
            self._scan_block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            self._scan_block(node.body)
        elif isinstance(node, ast.Try):
            self._scan_block(node.body)
            for handler in node.handlers:
                self._scan_block(handler.body)
            self._scan_block(node.orelse)
            self._scan_block(node.finalbody)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no flow.

    def _merge(self, other: Dict[str, Taint]) -> None:
        for name, taint in other.items():
            self.env[name] = self.env.get(name, _CLEAN) | taint

    # -- assignment targets --------------------------------------------

    def _assign(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Attribute):
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self" and taint):
                self._record_state_hit(target, target.attr, taint)
        elif isinstance(target, ast.Subscript):
            # ``container[k] = tainted``: the container becomes tainted.
            if isinstance(target.value, ast.Name) and taint:
                base = self.env.get(target.value.id, _CLEAN)
                self.env[target.value.id] = base | taint
            elif (isinstance(target.value, ast.Attribute)
                  and isinstance(target.value.value, ast.Name)
                  and target.value.value.id == "self" and taint):
                self._record_state_hit(target, target.value.attr, taint)

    def _read(self, target: ast.expr) -> Taint:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, _CLEAN)
        return _CLEAN

    def _record_state_hit(self, node: ast.AST, attr: str,
                          taint: Taint) -> None:
        self.hits.append(SinkHit(node=node, sink="state-store",
                                 target=f"self.{attr}", origins=taint))
        for origin in taint:
            if origin.kind == "param" and origin.param >= 0:
                self.params_to_state.setdefault(origin.param, f"self.{attr}")

    # -- expressions ---------------------------------------------------

    def _expr(self, node: Optional[ast.expr]) -> Taint:
        if node is None:
            return _CLEAN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CLEAN)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            return self._expr(node.value)
        if isinstance(node, ast.Lambda):
            return _CLEAN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            taint = _CLEAN
            for generator in node.generators:
                taint |= self._expr(generator.iter)
            return taint
        # Everything else: join over child expressions.
        taint = _CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taint |= self._expr(child)
        return taint

    def _call(self, node: ast.Call) -> Taint:
        arg_taints = [self._expr(arg) for arg in node.args]
        kw_taints = [self._expr(kw.value) for kw in node.keywords]
        joined_args = _CLEAN
        for taint in arg_taints + kw_taints:
            joined_args |= taint

        self._check_scheduler(node, arg_taints, kw_taints)

        qual = call_qualname(node, self.imports)
        if qual is not None and qual in self.engine.sources:
            description = self.engine.sources[qual]
            return joined_args | frozenset({Origin(
                kind="source", detail=description, line=node.lineno)})

        resolved = self.engine.graph.resolve_call(node, self.fn.module,
                                                  self.fn.cls)
        if resolved is not None:
            self._check_callee_params(node, resolved, arg_taints)
            summary = self.engine.summaries.get(resolved)
            if summary is not None and summary.returns:
                out = set(joined_args)
                for origin in summary.returns:
                    if origin.kind == "source":
                        via = origin.via or resolved
                        out.add(replace(origin, via=via))
                    # param origins of the callee map to our arg taints
                    elif 0 <= origin.param < len(arg_taints):
                        out |= arg_taints[origin.param]
                return frozenset(out)
            return joined_args

        # Unknown call: taint flows through (str(t), int(t), t.method()).
        func_taint = (self._expr(node.func.value)
                      if isinstance(node.func, ast.Attribute) else _CLEAN)
        return joined_args | func_taint

    def _check_callee_params(self, node: ast.Call, callee: str,
                             arg_taints: List[Taint]) -> None:
        summary = self.engine.summaries.get(callee)
        if summary is None:
            return
        for index, reaches in summary.params_to_state.items():
            if index >= len(arg_taints):
                continue
            taint = arg_taints[index]
            if taint:
                self.hits.append(SinkHit(
                    node=node, sink="call-arg",
                    target=f"{callee} -> {reaches}", origins=taint))
                for origin in taint:
                    if origin.kind == "param" and origin.param >= 0:
                        self.params_to_state.setdefault(
                            origin.param, f"{callee} -> {reaches}")

    def _check_scheduler(self, node: ast.Call, arg_taints: List[Taint],
                         kw_taints: List[Taint]) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SCHEDULER_METHODS):
            return
        joined = _CLEAN
        for taint in arg_taints + kw_taints:
            joined |= taint
        if joined:
            self.hits.append(SinkHit(node=node, sink="event-schedule",
                                     target=func.attr, origins=joined))
            for origin in joined:
                if origin.kind == "param" and origin.param >= 0:
                    self.params_to_state.setdefault(
                        origin.param, f"scheduler .{func.attr}()")
