"""Preset worlds: small closed systems the explorer walks exhaustively.

A world bundles a simulator, a workload, and the checker-facing
surface the explorer needs:

* ``state_vector()`` -- the behavioural state, reduced to primitives,
  for fingerprinting.  It must include everything that can change the
  future (FSM variables, queue contents, pending events with their
  payloads) and should exclude write-only history (trace logs,
  monotone stat counters) so equivalent states actually merge.
* ``resources(event)`` -- the set of components an event can touch,
  used for the independence relation behind sleep-set POR.  When in
  doubt a world returns :data:`ALL_RESOURCES`, which only costs
  reduction, never soundness.
* ``obligations()`` -- outstanding liveness obligations; nonempty at a
  terminal (event-free) state is a liveness violation.
* ``invariants`` -- the safety properties checked at every state.

Frame loss is *chosen*, not drawn: links and the radio loss gate ask
the world's :class:`~repro.faults.inject.ChoiceOracle`, each with a
small drop budget.  The budget is the fairness assumption -- a
schedule may lose any frame, but not every retransmission forever --
and it is what keeps the liveness properties meaningful and the state
space finite.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.ax25.address import AX25Address
from repro.ax25.frames import AX25Frame
from repro.ax25.lapb import LapbConnection, LapbEndpoint, LapbState
from repro.check.invariants import (
    BoundedQueues,
    ControlNeverShed,
    Invariant,
    LapbConservation,
    NoStuckFsm,
)
from repro.core.topology import Figure1Testbed, build_figure1_testbed
from repro.faults.inject import ChoiceOracle
from repro.inet.icmp import echo_request
from repro.inet.sockets import TcpServerSocket, TcpSocket
from repro.sim.clock import MS, SECOND
from repro.sim.engine import Event, Simulator
from repro.sim.trace import Tracer

#: Sentinel resource set: conflicts with everything (no POR across it).
ALL_RESOURCES = frozenset(("*",))


def independent(left: frozenset, right: frozenset) -> bool:
    """Two transitions are independent iff their resource sets are disjoint."""
    if "*" in left or "*" in right:
        return False
    return left.isdisjoint(right)


class World:
    """Base class wiring the checker-facing surface; presets subclass."""

    name = "world"
    sim: Simulator
    oracle: ChoiceOracle
    tracer: Tracer
    lapb_endpoints: Sequence[LapbEndpoint] = ()
    drivers: Sequence = ()
    invariants: Sequence[Invariant] = ()

    def state_vector(self):
        """The behavioural state as a canonicalisable structure."""
        raise NotImplementedError

    def resources(self, event: Event) -> frozenset:
        """Components ``event`` may touch; default conflicts with all."""
        return ALL_RESOURCES

    def obligations(self) -> List[str]:
        """Outstanding liveness obligations (empty = quiescence is legal)."""
        return []

    def queue_depths(self) -> Dict[str, int]:
        """Queue depths for :class:`BoundedQueues`."""
        return {}

    # -- shared vector helpers ----------------------------------------

    def _pending_vector(self):
        """Pending events as (relative time, label, payload summary)."""
        now = self.sim.now
        entries = []
        for event in self.sim.pending_events():
            label = event.label or getattr(event.fn, "__qualname__", "?")
            entries.append((event.time - now, label,
                            _args_summary(event.args)))
        return tuple(sorted(entries))

    def _conn_vector(self, conn: LapbConnection):
        timer = conn._t1_event
        return (
            conn.state.value, conn.vs, conn.vr, conn.va,
            conn.retry_count, conn.peer_busy, conn.local_busy,
            conn._rej_outstanding,
            tuple(bytes(item) for item in conn.send_queue),
            tuple((entry.ns, bytes(entry.info), entry.retransmitted,
                   entry.sent_at - self.sim.now) for entry in conn.unacked),
            timer is None,
            timer is not None and not timer.cancelled
            and self.sim.is_queued(timer),
        )

    def _endpoint_vector(self, endpoint: LapbEndpoint):
        return tuple(sorted(
            (key, self._conn_vector(conn))
            for key, conn in endpoint.connections.items()))


def _args_summary(args: tuple):
    """Reduce event args to primitives that distinguish their futures."""
    summary = []
    for arg in args:
        if isinstance(arg, AX25Frame):
            summary.append(_frame_summary(arg))
        elif isinstance(arg, (bytes, bytearray)):
            summary.append(bytes(arg))
        elif isinstance(arg, (int, str, bool)) or arg is None:
            summary.append(arg)
        else:
            name = getattr(arg, "name", None)
            summary.append(f"<{type(arg).__name__}:{name}>")
    return tuple(summary)


def _frame_summary(frame: AX25Frame):
    return (
        frame.frame_type.value, str(frame.source), str(frame.destination),
        frame.ns, frame.nr, frame.poll_final, frame.command,
        bytes(frame.info or b""), frame.pid,
    )


class ChoiceLink:
    """A point-to-point frame carrier whose losses are oracle choices.

    Delivery is a fixed-latency scheduled event; while the drop budget
    lasts, each frame first passes a two-armed choice point (arm 0 =
    deliver, arm 1 = drop).  Past the budget the link is perfect, so
    every path eventually makes progress (the fairness bound).
    """

    def __init__(self, sim: Simulator, oracle: ChoiceOracle, tracer: Tracer,
                 name: str, latency: int, drop_budget: int) -> None:
        self.sim = sim
        self.oracle = oracle
        self.tracer = tracer
        self.name = name
        self.latency = latency
        self.drops_left = drop_budget
        #: Anything with ``handle_frame`` (an endpoint or a hub); wired
        #: by the world after both ends exist.
        self.destination = None
        self._sends = 0

    def __call__(self, frame: AX25Frame) -> None:
        self._sends += 1
        if self.drops_left > 0:
            if self.oracle.choose(f"drop:{self.name}#{self._sends}", 2) == 1:
                self.drops_left -= 1
                self.tracer.log("check.drop", self.name,
                                "oracle dropped frame in flight",
                                frame=str(frame.frame_type.value))
                return
        self.sim.schedule(self.latency, self.destination.handle_frame, frame,
                          label=f"deliver {self.name}")

    def vector(self):
        """Behavioural link state (counters are history, not state)."""
        return (self.drops_left,)


class CollidingHub:
    """The hidden-terminal receiver: same-instant arrivals collide.

    Arrivals buffer into ``pending_rx`` and a flush runs at the same
    instant (after other already-queued work).  Two frames in one
    flush destroy each other -- the spokes cannot hear one another, so
    nothing stopped them transmitting simultaneously.  Which arrivals
    share a flush depends on the event order at that instant, which is
    exactly the nondeterminism the explorer enumerates.
    """

    def __init__(self, sim: Simulator, tracer: Tracer, name: str,
                 endpoint: LapbEndpoint) -> None:
        self.sim = sim
        self.tracer = tracer
        self.name = name
        self.endpoint = endpoint
        self.pending_rx: List[AX25Frame] = []
        self.collisions = 0

    def handle_frame(self, frame: AX25Frame) -> None:
        self.pending_rx.append(frame)
        if len(self.pending_rx) == 1:
            self.sim.call_soon(self._flush, label=f"hub-flush {self.name}")

    def _flush(self) -> None:
        frames, self.pending_rx = self.pending_rx, []
        if len(frames) > 1:
            self.collisions += len(frames)
            self.tracer.log("check.collision", self.name,
                            f"{len(frames)} frames collided at the hub")
            return
        for frame in frames:
            self.endpoint.handle_frame(frame)

    def vector(self):
        return tuple(_frame_summary(frame) for frame in self.pending_rx)


def _protocol_obligations(side: str, endpoint: LapbEndpoint) -> List[str]:
    """LAPB liveness obligations: awaiting-peer states and unacked frames."""
    out = []
    for key, conn in endpoint.connections.items():
        if conn.state in (LapbState.AWAITING_CONNECTION,
                          LapbState.AWAITING_RELEASE):
            out.append(f"{side}->{key}: {conn.state.value} unresolved")
        if conn.unacked:
            out.append(f"{side}->{key}: {len(conn.unacked)} I frame(s) "
                       f"neither acked nor abandoned")
    return out


class Lapb2World(World):
    """Two stations, simultaneous SABMs, one I frame each way, release.

    The smallest world with genuine concurrency: both directions are
    symmetric and independent, so POR has real interleavings to merge,
    and the drop budget (one frame per direction) folds every single
    loss + T1 recovery into the walk.
    """

    name = "lapb2"

    def __init__(self, drop_budget: int = 1) -> None:
        self.sim = Simulator()
        self.oracle = ChoiceOracle()
        self.tracer = Tracer(self.sim)
        self._sides = {"N7AKR": "A", "KB7DZ": "B"}
        addr_a = AX25Address("N7AKR")
        addr_b = AX25Address("KB7DZ")
        self.link_ab = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "A->B", latency=10 * MS,
                                  drop_budget=drop_budget)
        self.link_ba = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "B->A", latency=10 * MS,
                                  drop_budget=drop_budget)
        self.a = LapbEndpoint(self.sim, addr_a, self.link_ab,
                              t1=1 * SECOND, retries=2, window=2,
                              tracer=self.tracer)
        self.b = LapbEndpoint(self.sim, addr_b, self.link_ba,
                              t1=1 * SECOND, retries=2, window=2,
                              tracer=self.tracer)
        self.link_ab.destination = self.b
        self.link_ba.destination = self.a
        self.a.on_connect = self._a_connected
        self.b.on_connect = self._b_connected
        self.a.on_data = self._a_data
        self.b.on_data = self._b_data
        self.sent = {"A": False, "B": False}
        self.got = {"A": False, "B": False}
        self.lapb_endpoints = [self.a, self.b]
        self.invariants = [LapbConservation(), NoStuckFsm(),
                           BoundedQueues(16)]
        self.sim.at(0, self._kickoff, label="kickoff")

    def _kickoff(self) -> None:
        # Simultaneous establishment: both SABMs cross in flight.
        self.a.connect(self.b.address)
        self.b.connect(self.a.address)

    def _send_once(self, side: str, conn: LapbConnection,
                   payload: bytes) -> None:
        if not self.sent[side]:
            self.sent[side] = True
            conn.send(payload)

    def _a_connected(self, conn: LapbConnection, _initiated: bool) -> None:
        self._send_once("A", conn, b"PING")

    def _b_connected(self, conn: LapbConnection, _initiated: bool) -> None:
        self._send_once("B", conn, b"PONG")

    def _a_data(self, conn: LapbConnection, _data: bytes, _pid: int) -> None:
        self.got["A"] = True
        conn.disconnect()

    def _b_data(self, conn: LapbConnection, _data: bytes, _pid: int) -> None:
        self.got["B"] = True
        conn.disconnect()

    def state_vector(self):
        return (
            self._endpoint_vector(self.a),
            self._endpoint_vector(self.b),
            self.link_ab.vector(), self.link_ba.vector(),
            tuple(sorted(self.sent.items())),
            tuple(sorted(self.got.items())),
            self._pending_vector(),
        )

    def resources(self, event: Event) -> frozenset:
        label = event.label
        if label.startswith("deliver "):
            src, dst = label[len("deliver "):].split("->")
            # Delivery mutates the receiver, whose replies go out on
            # its own link -- the reverse direction of this one.
            return frozenset((f"ep:{dst}", f"link:{dst}->{src}"))
        if label.startswith("lapb-t1 "):
            src, dst = label[len("lapb-t1 "):].split("->")
            side, peer = self._sides[src], self._sides[dst]
            return frozenset((f"ep:{side}", f"link:{side}->{peer}"))
        return ALL_RESOURCES

    def obligations(self) -> List[str]:
        return (_protocol_obligations("A", self.a)
                + _protocol_obligations("B", self.b))

    def queue_depths(self) -> Dict[str, int]:
        depths = {}
        for side, endpoint in (("A", self.a), ("B", self.b)):
            for key, conn in endpoint.connections.items():
                depths[f"{side}->{key}.send_queue"] = len(conn.send_queue)
                depths[f"{side}->{key}.unacked"] = len(conn.unacked)
        depths["sim.pending"] = len(self.sim.pending_events())
        return depths


class Hidden3World(World):
    """Two spokes behind a hub: the §2.2 hidden-terminal triangle.

    A and C both connect to hub B and push one I frame.  They cannot
    hear each other, so same-instant arrivals at B collide and die
    (see :class:`CollidingHub`); staggered T1 values (1s vs 1.5s) let
    retransmissions escape the collision eventually.  The links stay
    open at quiescence -- the obligations are purely protocol-level.
    """

    name = "hidden3"

    def __init__(self, drop_budget: int = 1) -> None:
        self.sim = Simulator()
        self.oracle = ChoiceOracle()
        self.tracer = Tracer(self.sim)
        self._sides = {"N7AKR": "A", "KB7DZ": "B", "KE7C": "C"}
        addr_a = AX25Address("N7AKR")
        addr_b = AX25Address("KB7DZ")
        addr_c = AX25Address("KE7C")
        self.switch_b = _AddressSwitch()
        self.b = LapbEndpoint(self.sim, addr_b, self.switch_b,
                              t1=2 * SECOND, retries=2, window=2,
                              tracer=self.tracer)
        self.hub = CollidingHub(self.sim, self.tracer, "B", self.b)
        self.link_ab = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "A->B", latency=10 * MS,
                                  drop_budget=drop_budget)
        self.link_cb = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "C->B", latency=10 * MS, drop_budget=0)
        self.link_ba = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "B->A", latency=10 * MS, drop_budget=0)
        self.link_bc = ChoiceLink(self.sim, self.oracle, self.tracer,
                                  "B->C", latency=10 * MS, drop_budget=0)
        self.a = LapbEndpoint(self.sim, addr_a, self.link_ab,
                              t1=1 * SECOND, retries=2, window=2,
                              tracer=self.tracer)
        self.c = LapbEndpoint(self.sim, addr_c, self.link_cb,
                              t1=1 * SECOND + 500 * MS, retries=2, window=2,
                              tracer=self.tracer)
        self.link_ab.destination = self.hub
        self.link_cb.destination = self.hub
        self.link_ba.destination = self.a
        self.link_bc.destination = self.c
        self.switch_b.links = {"N7AKR": self.link_ba, "KE7C": self.link_bc}
        self.a.on_connect = self._a_connected
        self.c.on_connect = self._c_connected
        self.sent = {"A": False, "C": False}
        self.lapb_endpoints = [self.a, self.b, self.c]
        self.invariants = [LapbConservation(), NoStuckFsm(),
                           BoundedQueues(16)]
        self.sim.at(0, self._kickoff, label="kickoff")

    def _kickoff(self) -> None:
        self.a.connect(self.b.address)
        self.c.connect(self.b.address)

    def _a_connected(self, conn: LapbConnection, _initiated: bool) -> None:
        if not self.sent["A"]:
            self.sent["A"] = True
            conn.send(b"DATA-A")

    def _c_connected(self, conn: LapbConnection, _initiated: bool) -> None:
        if not self.sent["C"]:
            self.sent["C"] = True
            conn.send(b"DATA-C")

    def state_vector(self):
        return (
            self._endpoint_vector(self.a),
            self._endpoint_vector(self.b),
            self._endpoint_vector(self.c),
            self.hub.vector(),
            self.link_ab.vector(), self.link_cb.vector(),
            self.link_ba.vector(), self.link_bc.vector(),
            tuple(sorted(self.sent.items())),
            self._pending_vector(),
        )

    def resources(self, event: Event) -> frozenset:
        label = event.label
        if label.startswith("deliver "):
            src, dst = label[len("deliver "):].split("->")
            if dst == "B":
                # Into the hub: only the arrival buffer is touched.
                return frozenset(("hub:B",))
            return frozenset((f"ep:{dst}", f"link:{dst}->B"))
        if label.startswith("hub-flush"):
            return frozenset(("hub:B", "ep:B", "link:B->A", "link:B->C"))
        if label.startswith("lapb-t1 "):
            src, dst = label[len("lapb-t1 "):].split("->")
            side, peer = self._sides[src], self._sides[dst]
            return frozenset((f"ep:{side}", f"link:{side}->{peer}"))
        return ALL_RESOURCES

    def obligations(self) -> List[str]:
        return (_protocol_obligations("A", self.a)
                + _protocol_obligations("B", self.b)
                + _protocol_obligations("C", self.c))

    def queue_depths(self) -> Dict[str, int]:
        depths = {"hub.pending_rx": len(self.hub.pending_rx),
                  "sim.pending": len(self.sim.pending_events())}
        for side, endpoint in (("A", self.a), ("B", self.b), ("C", self.c)):
            for key, conn in endpoint.connections.items():
                depths[f"{side}->{key}.send_queue"] = len(conn.send_queue)
                depths[f"{side}->{key}.unacked"] = len(conn.unacked)
        return depths


class _AddressSwitch:
    """Routes a hub endpoint's outbound frames to the per-spoke link."""

    def __init__(self) -> None:
        self.links: Dict[str, ChoiceLink] = {}

    def __call__(self, frame: AX25Frame) -> None:
        link = self.links.get(str(frame.destination.base))
        if link is not None:
            link(frame)


class _Figure1World(World):
    """Shared plumbing for worlds built on the figure-1 radio testbed."""

    queue_bound = 64

    def __init__(self, fidelity: str = "frame") -> None:
        self.oracle = ChoiceOracle()
        self.testbed: Figure1Testbed = build_figure1_testbed(
            seed=0, fidelity=fidelity)
        self.sim = self.testbed.sim
        self.tracer = self.testbed.tracer
        self.drivers = [self.testbed.host.interface,
                        self.testbed.peer.interface]
        self.lapb_endpoints = []
        self.loss_budget = 0
        self._loss_draws = 0

    def enable_loss(self, budget: int) -> None:
        """Route channel corruption through the oracle, ``budget`` drops max."""
        self.loss_budget = budget
        self.testbed.channel.loss_gate = self._loss_gate

    def _loss_gate(self, payload: bytes, port_name: str) -> bool:
        if self.loss_budget <= 0:
            return True
        self._loss_draws += 1
        if self.oracle.choose(f"loss:{port_name}#{self._loss_draws}", 2) == 1:
            self.loss_budget -= 1
            self.tracer.log("check.drop", port_name,
                            "oracle faded frame at the receiver")
            return False
        return True

    # -- vector helpers over the full radio stack ---------------------

    def _tcp_vector(self, stack):
        conns = []
        protocol = stack.tcp
        for key, conn in sorted(protocol._connections.items()):
            conns.append((repr(key), self._tcp_conn_vector(conn)))
        for port, conn in sorted(protocol._listeners.items()):
            conns.append((f"listen:{port}", self._tcp_conn_vector(conn)))
        return (protocol._iss, protocol._ephemeral, tuple(conns))

    def _tcp_conn_vector(self, conn):
        return (
            conn.state.value, conn.snd_una, conn.snd_nxt, conn.snd_wnd,
            conn.rcv_nxt, conn.rcv_wnd, conn.iss, conn.irs,
            len(conn._send_buffer), conn._fin_queued, conn._fin_sent,
            tuple((entry.seq, len(entry.payload), entry.flags)
                  for entry in conn._unacked),
            tuple(sorted((seq, len(data))
                         for seq, data in conn._out_of_order.items())),
            conn._retry_count, conn._persist_shift, conn._dup_ack_count,
            conn.cwnd, conn.ssthresh,
            conn.rto_policy.srtt if hasattr(conn.rto_policy, "srtt") else 0,
        )

    def _host_vector(self, host):
        stack = host.stack
        radio = host.radio
        tnc = radio.tnc
        interface = radio.interface
        station = tnc.station
        return (
            len(stack.ip_input_queue),
            self._tcp_vector(stack),
            tuple(sorted((key, entry.hw_address,
                          entry.expires_at - self.sim.now)
                         for key, entry in interface.arp.cache.items())),
            tuple(sorted((key, len(pending.packets), pending.retries_left)
                         for key, pending in interface.arp._pending.items())),
            len(interface.send_queue),
            interface.rx_char_interrupts,
            interface._raw_discarding,
            radio.serial.a._tx_free_at - self.sim.now,
            radio.serial.b._tx_free_at - self.sim.now,
            tnc.wedged, tnc._rebooting,
            tuple(bytes(item) for item in station._queue),
            station._access_event is not None,
        )

    def _channel_vector(self):
        channel = self.testbed.channel
        now = self.sim.now
        return (
            tuple(sorted((tx.sender.name, tx.end - now)
                         for tx in channel.active)),
            tuple(sorted(channel.fade_probability.items())),
            self.loss_budget,
        )

    def _streams_vector(self):
        entries = []
        for name, rng in sorted(self.testbed.streams._streams.items()):
            digest = hashlib.sha256(repr(rng.getstate()).encode())
            entries.append((name, digest.hexdigest()[:16]))
        return tuple(entries)

    def queue_depths(self) -> Dict[str, int]:
        depths = {"sim.pending": len(self.sim.pending_events())}
        for host, tag in ((self.testbed.host, "host"),
                          (self.testbed.peer, "peer")):
            depths[f"{tag}.ipintrq"] = len(host.stack.ip_input_queue)
            depths[f"{tag}.if_snd"] = len(host.radio.interface.send_queue)
            depths[f"{tag}.station"] = len(host.radio.tnc.station._queue)
        return depths


class TcpXferWorld(_Figure1World):
    """A TCP transfer across the radio link under chosen loss.

    The paper's headline demo (TCP between radio hosts) driven through
    every loss placement the budget allows.  The state space is far
    beyond exhaustion -- serial timing fans out enormously -- so this
    world runs under explicit budgets; the properties are pure safety
    plus the terminal-state transfer obligation.
    """

    name = "tcpxfer"
    PAYLOAD = 300

    def __init__(self, loss_budget: int = 1) -> None:
        super().__init__(fidelity="frame")
        self.enable_loss(loss_budget)
        self.server_sockets: List[TcpSocket] = []
        self.client: Optional[TcpSocket] = None
        self.server = TcpServerSocket(self.testbed.peer.stack, 7,
                                      self._accept)
        self.invariants = [BoundedQueues(self.queue_bound),
                           ControlNeverShed()]
        self.sim.at(0, self._kickoff, label="kickoff")

    def _kickoff(self) -> None:
        self.client = TcpSocket.connect(self.testbed.host.stack,
                                        "44.24.0.5", 7)
        self.client.on_connect = self._client_connected

    def _client_connected(self) -> None:
        self.client.send(b"x" * self.PAYLOAD)
        self.client.close()

    def _accept(self, socket: TcpSocket) -> None:
        self.server_sockets.append(socket)

    def received_bytes(self) -> int:
        return sum(len(sock.recv_buffer) for sock in self.server_sockets)

    def state_vector(self):
        return (
            self._host_vector(self.testbed.host),
            self._host_vector(self.testbed.peer),
            self._channel_vector(),
            self._streams_vector(),
            tuple(len(sock.recv_buffer) for sock in self.server_sockets),
            self.client is not None,
            self._pending_vector(),
        )

    def obligations(self) -> List[str]:
        if self.received_bytes() < self.PAYLOAD:
            return [f"tcp transfer incomplete: "
                    f"{self.received_bytes()}/{self.PAYLOAD} bytes"]
        return []


class ShedWorld(_Figure1World):
    """Bulk UDP saturating the serial choke point, then a ping.

    The §4.1 graceful-degradation scenario as a safety world: with a
    tiny shed threshold the bulk datagrams overrun the backlog guard,
    and :class:`ControlNeverShed` asserts the ICMP echo is never among
    the shed frames -- under any schedule, which is what distinguishes
    the guard from a happy-path test of it.
    """

    name = "shedworld"

    def __init__(self, loss_budget: int = 0) -> None:
        super().__init__(fidelity="frame")
        if loss_budget:
            self.enable_loss(loss_budget)
        self.testbed.host.interface.shed_threshold_bytes = 120
        self.invariants = [BoundedQueues(self.queue_bound),
                           ControlNeverShed()]
        self.sim.at(0, self._kickoff, label="kickoff")

    def _kickoff(self) -> None:
        stack = self.testbed.host.stack
        for index in range(3):
            stack.udp_send("44.24.0.5", 4000 + index, 5000, b"b" * 160)
        stack.send_icmp(echo_request(ident=7, sequence=1, payload=b"hello"),
                        "44.24.0.5")

    def state_vector(self):
        return (
            self._host_vector(self.testbed.host),
            self._host_vector(self.testbed.peer),
            self._channel_vector(),
            self._streams_vector(),
            self._pending_vector(),
        )


#: name -> zero-argument world factory (the CLI preset registry).
WORLDS: Dict[str, Callable[[], World]] = {
    "lapb2": Lapb2World,
    "hidden3": Hidden3World,
    "tcpxfer": TcpXferWorld,
    "shedworld": ShedWorld,
}


def build_world(name: str) -> World:
    """Instantiate a preset world by name."""
    try:
        factory = WORLDS[name]
    except KeyError:
        raise ValueError(
            f"unknown world {name!r}; presets: {', '.join(sorted(WORLDS))}"
        ) from None
    return factory()
