"""State capture, restore, and canonical fingerprints.

A world is an ordinary Python object graph: simulator, endpoints,
queues, pending events.  :class:`StateCapturer` freezes it with
``copy.deepcopy`` -- bound methods rebind ``__self__`` through the
deepcopy memo, so every callback and scheduled event in the copy
points at the *copied* component, never back into the live world.
That property is what the SNAP001 lint protects: a lambda or
generator stored on sim state deepcopies by reference and would
silently alias the original.

Classes that genuinely cannot be deepcopied (an mmap, a C handle)
register a reducer instead of poisoning every capture; none of the
shipped sim state needs one, so the registry doubles as an inventory
of known escape hatches.

Fingerprints canonicalise a world's *behavioural* state vector --
sorted dict items, deques as tuples, enums by value -- and hash it.
Two states with equal fingerprints have identical futures, which is
what lets the explorer merge them (see DESIGN §11 for the soundness
argument about what the vector may omit).
"""

from __future__ import annotations

import copy
import enum
import hashlib
from typing import Any, Callable, Dict, TypeVar

T = TypeVar("T")

#: class -> reducer, kept as an inventory of sanctioned escape hatches.
#: Process-global by design, like the lint-pass registries: a reducer
#: changes how a *class* deepcopies, which is already interpreter-wide
#: state; nothing here ever reaches a shard's wire bytes.
_REDUCERS: Dict[type, Callable[[Any, dict], Any]] = {}  # reprolint: disable=SHARD001 -- deepcopy-reducer registry, interpreter-wide by nature


def register_reducer(cls: type, reducer: Callable[[Any, dict], Any]) -> None:
    """Install ``reducer(obj, memo)`` as ``cls``'s deepcopy behaviour.

    The escape hatch for state that cannot be deepcopied structurally.
    The reducer must return an object with an equivalent future -- the
    capturer trusts it blindly.
    """

    def _deepcopy_via_reducer(self: Any, memo: dict) -> Any:
        replacement = reducer(self, memo)
        memo[id(self)] = replacement
        return replacement

    cls.__deepcopy__ = _deepcopy_via_reducer  # type: ignore[attr-defined]
    _REDUCERS[cls] = reducer


def registered_reducers() -> Dict[type, Callable[[Any, dict], Any]]:
    """The current reducer inventory (for tests and diagnostics)."""
    return dict(_REDUCERS)


class StateCapturer:
    """Snapshot/restore for a world object graph.

    ``capture`` returns a frozen deep copy; ``restore`` returns a fresh
    live copy of that frozen snapshot.  Each restore is independent --
    the explorer restores the same snapshot once per branch and mutates
    each copy freely.  Objects passed to :meth:`share` are threaded
    through unchanged (identity-preserved) in both directions; use it
    for genuinely ambient things (an interner, a read-only table),
    never for mutable sim state.
    """

    def __init__(self) -> None:
        self._shared: list[Any] = []
        self.captures = 0
        self.restores = 0

    def share(self, obj: Any) -> None:
        """Exempt ``obj`` from copying: snapshots alias it directly."""
        self._shared.append(obj)

    def _memo(self) -> dict:
        return {id(obj): obj for obj in self._shared}

    def capture(self, world: T) -> T:
        """Freeze the world: a deep copy sharing nothing mutable with it."""
        self.captures += 1
        return copy.deepcopy(world, self._memo())

    def restore(self, frozen: T) -> T:
        """A fresh live world from a frozen snapshot (never the snapshot)."""
        self.restores += 1
        return copy.deepcopy(frozen, self._memo())


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, hashable structure.

    Dicts become sorted item tuples, sets become sorted tuples, any
    sequence becomes a tuple, enums collapse to their value.  Unordered
    containers must canonicalise to the same result regardless of
    insertion history or the states would never merge.
    """
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        return tuple(sorted(
            (repr(key), canonical(item)) for key, item in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(canonical(item)) for item in value))
    if isinstance(value, (list, tuple)) or value.__class__.__name__ == "deque":
        return tuple(canonical(item) for item in value)
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"state vector contains un-canonicalisable {type(value).__name__}: "
        f"{value!r} -- reduce it to primitives in state_vector()")


def fingerprint(state_vector: Any) -> str:
    """A stable hash of a canonicalised state vector."""
    digest = hashlib.sha256(repr(canonical(state_vector)).encode())
    return digest.hexdigest()[:32]
