"""Seeded bugs proving the checker can actually find bugs.

Each mutation re-introduces a realistic defect -- an accounting gap,
a dead retransmission timer, a missing priority exemption -- by
patching the live method with a copy lacking one crucial line.  The
mutation gate (``python -m repro mc --mutation-gate``) requires the
explorer to find a violation in every mutant AND to replay its
counterexample deterministically; a checker that passes clean worlds
but misses these is vacuous.

The mutants are deliberately of three different species so they
exercise three different properties:

* ``dropped-ack``    -- safety, conservation arithmetic (LapbConservation)
* ``skipped-t1``     -- safety, timer liveness scaffolding (NoStuckFsm)
* ``unfair-shed``    -- safety, priority fairness (ControlNeverShed)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict

from repro.ax25.defs import FrameType
from repro.ax25.lapb import LapbConnection, LapbState, _seq_in_range
from repro.core.driver import PRIO_BULK, PRIO_CONTROL, PacketRadioInterface


def _mutant_apply_ack(self, nr: int) -> None:
    """_apply_ack with the i_acked bump dropped (accounting gap)."""
    if not self._nr_valid(nr):
        self.stats["frmr_sent"] += 1
        self._send_u(FrameType.FRMR, poll_final=False, command=False)
        return
    while self.unacked:
        entry = self.unacked[0]
        if _seq_in_range(entry.ns, self.va, nr):
            self.unacked.popleft()
            # BUG: stats["i_acked"] is never bumped.
            self.va = (entry.ns + 1) % 8
            self.retry_count = 0
            if not entry.retransmitted:
                self.timer_policy.sample(
                    self.endpoint.sim.now - entry.sent_at)
                self.stats["rtt_samples"] += 1
                self._observe_recovery()
        else:
            break
    if not self.unacked and self.state is LapbState.CONNECTED:
        self._stop_t1()
    self._pump()


def _mutant_t1_expired(self) -> None:
    """_t1_expired that forgets to rearm T1 after resending SABM."""
    self._t1_event = None
    self.retry_count += 1
    if self.retry_count > self.retries:
        self._enter_disconnected(notify=True, reason="retry limit")
        return
    if self.state is LapbState.AWAITING_CONNECTION:
        self._send_u(FrameType.SABM, poll_final=True)
        # BUG: no _start_t1() -- if this SABM is also lost, the
        # connection waits forever with no timer to save it.
    elif self.state is LapbState.AWAITING_RELEASE:
        self._send_u(FrameType.DISC, poll_final=True)
        self._start_t1()
    elif self.state is LapbState.CONNECTED:
        if self.unacked:
            self._retransmit_window()
        else:
            self._send_s(FrameType.RR, poll_final=True, command=True)
            self._start_t1()


def _mutant_transmit_ui(self, destination, pid, payload, path,
                        priority: int = PRIO_BULK) -> None:
    """The backlog shed guard without the control-traffic exemption."""
    if (self.shed_threshold_bytes is not None
            and self.tty.tx_backlog_bytes > self.shed_threshold_bytes):
        # BUG: sheds regardless of priority -- ARP and ICMP die with
        # the bulk, so a congested link also goes undiagnosable.
        self.count_shed()
        if priority == PRIO_CONTROL:
            self.sheds_control += 1
        if self.tracer is not None:
            self.tracer.log("driver.shed", str(self.callsign),
                            "output shed under backlog (no exemption)",
                            backlog=self.tty.tx_backlog_bytes)
        return
    _ORIGINAL_TRANSMIT_UI(self, destination, pid, payload, path, priority)


_ORIGINAL_TRANSMIT_UI = PacketRadioInterface._transmit_ui


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: where to patch, what with, and where to hunt it."""

    name: str
    description: str
    world: str                     # preset expected to expose it
    expected_invariant: str        # invariant expected to fire
    target: type
    attribute: str
    mutant: Callable

    @contextmanager
    def active(self):
        """Install the mutant for the duration of a with-block."""
        original = getattr(self.target, self.attribute)
        setattr(self.target, self.attribute, self.mutant)
        try:
            yield
        finally:
            setattr(self.target, self.attribute, original)


MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="dropped-ack",
            description="ack bookkeeping loses the i_acked bump",
            world="lapb2",
            expected_invariant="lapb-conservation",
            target=LapbConnection,
            attribute="_apply_ack",
            mutant=_mutant_apply_ack,
        ),
        Mutation(
            name="skipped-t1",
            description="SABM retransmission forgets to rearm T1",
            world="lapb2",
            expected_invariant="no-stuck-fsm",
            target=LapbConnection,
            attribute="_t1_expired",
            mutant=_mutant_t1_expired,
        ),
        Mutation(
            name="unfair-shed",
            description="backlog shed loses the control-traffic exemption",
            world="shedworld",
            expected_invariant="control-never-shed",
            target=PacketRadioInterface,
            attribute="_transmit_ui",
            mutant=_mutant_transmit_ui,
        ),
    )
}
