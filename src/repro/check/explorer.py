"""The bounded explicit-state search.

One transition = one head event executed under one decision script.
From a given state the explorer enumerates (a) every pending event at
the earliest timestamp -- each is a legal kernel schedule -- and (b)
for each event, every resolution of the :class:`ChoicePoint` draws it
makes, discovered incrementally: run once with defaults, read the
recorded trace, and branch an alternative script per decision
(an odometer over the choice tree).

Backtracking is snapshot-based: the state is captured once and each
branch runs on a fresh restored copy, so exploration never needs an
"undo" from any layer of the stack.

Two classic reductions keep the walk tractable:

* **Visited-state dedup.**  States are fingerprinted canonically
  (:mod:`repro.check.snapshot`); re-reaching a fingerprint re-explores
  only transitions not yet taken from it.
* **Sleep-set POR** (Godefroid).  After exploring transition ``t``
  from state ``s``, sibling subtrees need not re-run ``t`` first when
  ``t`` is independent of their own first step -- the two orders
  commute to the same state.  Independence is resource-disjointness as
  declared by the world, which may always answer "conflicts with
  everything" and lose only reduction, never soundness.  The visited
  set stores *explored transition keys* per fingerprint, so a state
  re-reached with a more permissive sleep set re-explores exactly the
  transitions the first visit slept through (the standard patch for
  combining sleep sets with state caching).

Safety invariants are checked at every state.  Liveness is checked
where it is decidable in a finite walk: a terminal (event-free) state
with outstanding obligations, or a lasso back onto the DFS stack with
obligations still pending, is a violation.  The fairness assumption
making this meaningful lives in the worlds: drop budgets are finite,
so "the schedule loses every retransmission forever" is not a
reachable path.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.check.snapshot import StateCapturer, fingerprint
from repro.check.worlds import World, _args_summary, independent
from repro.faults.inject import ChoicePoint
from repro.sim.engine import Event


@dataclass
class Budget:
    """Exploration bounds; the result reports whether any was hit."""

    max_states: int = 50_000
    max_transitions: int = 500_000
    max_depth: int = 300
    max_wall_seconds: float = 30.0


@dataclass
class Step:
    """One transition on a counterexample path, replayably encoded."""

    time: int
    event_index: int          # position in head_events() (seq order)
    label: str
    choices: List[ChoicePoint] = field(default_factory=list)

    @property
    def script(self) -> List[int]:
        """The decision script that reproduces this step's choices."""
        return [point.chosen for point in self.choices]

    def render(self) -> str:
        text = f"t={self.time}us  event[{self.event_index}] {self.label}"
        if self.choices:
            picks = ", ".join(f"{p.name}={p.chosen}" for p in self.choices)
            text += f"  [{picks}]"
        return text


@dataclass
class Violation:
    """One property violation plus the path that reaches it."""

    kind: str                 # "safety" or "liveness"
    invariant: str
    message: str
    path: List[Step]

    @property
    def depth(self) -> int:
        return len(self.path)

    def render(self) -> str:
        lines = [f"{self.kind} violation of {self.invariant} "
                 f"after {self.depth} step(s): {self.message}"]
        lines += [f"  {index:3d}. {step.render()}"
                  for index, step in enumerate(self.path, 1)]
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """Everything one bounded walk learned."""

    world: str
    por: bool
    states: int = 0           # distinct fingerprints
    transitions: int = 0      # step_event executions
    revisits: int = 0         # arrivals at an already-known fingerprint
    sleep_skips: int = 0      # transitions pruned by sleep sets
    terminal_states: int = 0
    cycles: int = 0
    truncated: int = 0        # paths cut by the depth bound
    max_depth_seen: int = 0
    elapsed: float = 0.0
    complete: bool = True     # False when any budget tripped
    violations: List[Violation] = field(default_factory=list)

    @property
    def states_per_second(self) -> float:
        return self.states / self.elapsed if self.elapsed > 0 else 0.0

    def shortest_violation(self) -> Optional[Violation]:
        if not self.violations:
            return None
        return min(self.violations, key=lambda violation: violation.depth)

    def summary(self) -> Dict[str, object]:
        """Flat metrics for BENCH json."""
        return {
            "world": self.world,
            "por": self.por,
            "states": self.states,
            "transitions": self.transitions,
            "revisits": self.revisits,
            "sleep_skips": self.sleep_skips,
            "terminal_states": self.terminal_states,
            "cycles": self.cycles,
            "truncated": self.truncated,
            "max_depth": self.max_depth_seen,
            "elapsed_s": round(self.elapsed, 4),
            "states_per_second": round(self.states_per_second, 1),
            "complete": self.complete,
            "violations": len(self.violations),
        }


#: A transition's identity across visits: (event label, payload summary).
TransitionKey = Tuple[str, tuple]


def _transition_key(event: Event) -> TransitionKey:
    label = event.label or getattr(event.fn, "__qualname__", repr(event.fn))
    return (label, _args_summary(event.args))


class Explorer:
    """Bounded DFS over one world's schedules and fault choices."""

    def __init__(self, factory, por: bool = True,
                 budget: Optional[Budget] = None,
                 max_violations: int = 10,
                 dedup: bool = True) -> None:
        self.factory = factory
        self.por = por
        #: Visited-state caching.  Disable (with POR) to walk the raw
        #: execution tree -- the baseline that isolates how much work
        #: partial-order reduction alone saves, as reported in BENCH_mc.
        self.dedup = dedup
        self.budget = budget or Budget()
        self.max_violations = max_violations
        self.capturer = StateCapturer()
        self._visited: Dict[str, Set[TransitionKey]] = {}
        self._stack_fps: Set[str] = set()
        self._started = 0.0
        self.result: Optional[ExplorationResult] = None

    def run(self) -> ExplorationResult:
        """Explore from the world's initial state to fixpoint or budget."""
        world = self.factory()
        self.result = ExplorationResult(world=world.name, por=self.por)
        self._visited = {}
        self._stack_fps = set()
        self._started = time.perf_counter()
        previous_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(previous_limit, 8 * self.budget.max_depth + 1000))
        try:
            self._explore(world, depth=0, sleep={}, path=[])
        finally:
            sys.setrecursionlimit(previous_limit)
        self.result.elapsed = time.perf_counter() - self._started
        return self.result

    # ------------------------------------------------------------------

    def _over_budget(self) -> bool:
        result = self.result
        if (result.states >= self.budget.max_states
                or result.transitions >= self.budget.max_transitions
                or time.perf_counter() - self._started
                >= self.budget.max_wall_seconds):
            result.complete = False
            return True
        return False

    def _record(self, kind: str, invariant: str, message: str,
                path: List[Step]) -> None:
        if len(self.result.violations) < self.max_violations:
            self.result.violations.append(
                Violation(kind, invariant, message, list(path)))

    def _explore(self, world: World, depth: int,
                 sleep: Dict[TransitionKey, frozenset],
                 path: List[Step]) -> None:
        result = self.result
        result.max_depth_seen = max(result.max_depth_seen, depth)
        if self._over_budget():
            return

        for invariant in world.invariants:
            message = invariant.check(world)
            if message is not None:
                self._record("safety", invariant.name, message, path)
                return  # a violating state's futures are not interesting

        enabled = world.sim.head_events()
        if not enabled:
            result.terminal_states += 1
            obligations = world.obligations()
            if obligations:
                self._record("liveness", "terminal-obligations",
                             "; ".join(obligations), path)
            return

        fp = fingerprint(world.state_vector())
        if fp in self._stack_fps:
            # A lasso back onto the DFS path: a genuine no-progress
            # cycle, because everything that advances (counters,
            # budgets, timers) is in the fingerprint.
            result.cycles += 1
            obligations = world.obligations()
            if obligations:
                self._record("liveness", "non-progress-cycle",
                             "; ".join(obligations), path)
            return

        if self.dedup:
            explored = self._visited.get(fp)
            if explored is None:
                explored = set()
                self._visited[fp] = explored
                result.states += 1
            else:
                result.revisits += 1
        else:
            # Tree mode: every arrival is fresh; ``states`` counts tree
            # nodes, which is the denominator POR is judged against.
            explored = set()
            result.states += 1

        if depth >= self.budget.max_depth:
            result.truncated += 1
            result.complete = False
            return

        frozen = self.capturer.capture(world)
        self._stack_fps.add(fp)
        try:
            current_sleep = dict(sleep)
            for index, event in enumerate(enabled):
                key = _transition_key(event)
                resources = world.resources(event)
                if self.por and key in current_sleep:
                    result.sleep_skips += 1
                    continue
                if key in explored:
                    # Re-reached state: this transition's subtree was
                    # covered by an earlier visit; it still joins the
                    # sleep set like an explored sibling.
                    if self.por:
                        current_sleep[key] = resources
                    continue
                explored.add(key)
                self._branch(frozen, event.seq, index, depth, path,
                             current_sleep, resources)
                if self.por:
                    current_sleep[key] = resources
                if self._over_budget():
                    return
        finally:
            self._stack_fps.discard(fp)

    def _branch(self, frozen: World, seq: int, event_index: int, depth: int,
                path: List[Step],
                current_sleep: Dict[TransitionKey, frozenset],
                resources: frozenset) -> None:
        """Run one head event under every decision script it exposes."""
        child_sleep = {
            key: held for key, held in current_sleep.items()
            if independent(held, resources)
        } if self.por else {}

        frontier: List[List[int]] = [[]]
        seen_scripts = {()}
        while frontier:
            if self._over_budget():
                return
            script = frontier.pop()
            child = self.capturer.restore(frozen)
            event = self._event_by_seq(child, seq)
            if event is None:
                continue
            child.oracle.begin(script)
            child.sim.step_event(event)
            self.result.transitions += 1
            taken = list(child.oracle.trace)
            # Odometer: branch an alternative for every decision this
            # run resolved by default (past the scripted prefix).
            for position in range(len(script), len(taken)):
                point = taken[position]
                prefix = [p.chosen for p in taken[:position]]
                for alternative in range(point.chosen + 1, point.arms):
                    candidate = prefix + [alternative]
                    frozen_key = tuple(candidate)
                    if frozen_key not in seen_scripts:
                        seen_scripts.add(frozen_key)
                        frontier.append(candidate)
            step = Step(time=child.sim.now, event_index=event_index,
                        label=event.label
                        or getattr(event.fn, "__qualname__", "?"),
                        choices=taken)
            path.append(step)
            self._explore(child, depth + 1, dict(child_sleep), path)
            path.pop()

    @staticmethod
    def _event_by_seq(world: World, seq: int) -> Optional[Event]:
        for event in world.sim.head_events():
            if event.seq == seq:
                return event
        return None
