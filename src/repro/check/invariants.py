"""Safety invariants checked at every explored state.

Each invariant is a stateless predicate over a world; ``check``
returns ``None`` when the state is fine and a human-readable
diagnosis when it is not.  Statelessness matters: the explorer
evaluates the same invariant objects against hundreds of restored
world copies, so an invariant must never cache anything it read from
one copy.

These are the properties a single linear run can only sample but an
exhaustive walk can actually prove (within bounds):

* :class:`LapbConservation` -- every I frame a link ever sent is
  acked, in flight, or accounted abandoned.  The bookkeeping identity
  behind the flight recorder's census, promoted to an every-state law.
* :class:`NoStuckFsm` -- a LAPB connection that is waiting on the
  peer always has a live T1 to escape a lost reply.
* :class:`BoundedQueues` -- no queue grows past its world's bound.
* :class:`ControlNeverShed` -- the §4.1 graceful-degradation path
  never sheds ARP/ICMP, under any schedule.
"""

from __future__ import annotations

from typing import Optional

from repro.ax25.lapb import LapbState


class Invariant:
    """One safety property; subclasses override :meth:`check`."""

    name = "invariant"

    def check(self, world) -> Optional[str]:
        """None when the property holds, else a violation message."""
        raise NotImplementedError


class LapbConservation(Invariant):
    """i_sent == i_acked + in_flight + i_abandoned, on every link."""

    name = "lapb-conservation"

    def check(self, world) -> Optional[str]:
        for endpoint in world.lapb_endpoints:
            for key, conn in endpoint.connections.items():
                sent = conn.stats["i_sent"]
                acked = conn.stats["i_acked"]
                abandoned = conn.stats["i_abandoned"]
                flight = len(conn.unacked)
                if sent != acked + flight + abandoned:
                    return (
                        f"{endpoint.address}->{key}: i_sent={sent} != "
                        f"i_acked={acked} + in_flight={flight} + "
                        f"i_abandoned={abandoned}")
        return None


class NoStuckFsm(Invariant):
    """Any LAPB state that awaits the peer must have a live T1 timer.

    Without it, a single lost UA/ack wedges the link forever -- the
    class of bug a lost-frame schedule exposes and a happy-path test
    never sees.
    """

    name = "no-stuck-fsm"

    def check(self, world) -> Optional[str]:
        for endpoint in world.lapb_endpoints:
            for key, conn in endpoint.connections.items():
                waiting = (
                    conn.state in (LapbState.AWAITING_CONNECTION,
                                   LapbState.AWAITING_RELEASE)
                    or (conn.state is LapbState.CONNECTED and conn.unacked))
                if not waiting:
                    continue
                timer = conn._t1_event
                if (timer is None or timer.cancelled
                        or not endpoint.sim.is_queued(timer)):
                    return (
                        f"{endpoint.address}->{key} is {conn.state.value} "
                        f"with {len(conn.unacked)} unacked but no live T1")
        return None


class BoundedQueues(Invariant):
    """Every queue the world reports stays within its bound."""

    name = "bounded-queues"

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def check(self, world) -> Optional[str]:
        for label, depth in world.queue_depths().items():
            if depth > self.limit:
                return f"queue {label} depth {depth} exceeds bound {self.limit}"
        return None


class ControlNeverShed(Invariant):
    """The backlog shed path must never claim a control (ARP/ICMP) frame."""

    name = "control-never-shed"

    def check(self, world) -> Optional[str]:
        for driver in world.drivers:
            if driver.sheds_control:
                return (
                    f"{driver.callsign}: {driver.sheds_control} control "
                    f"frame(s) shed by the backlog guard")
        return None
