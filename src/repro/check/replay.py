"""Deterministic counterexample replay.

A :class:`~repro.check.explorer.Violation` carries a path of
:class:`~repro.check.explorer.Step` records -- which head event fired
(by position in the seq-ordered head list) and which arm every choice
point took.  Because the simulator itself is deterministic, feeding
that path into a *freshly built* world reproduces the violating
execution exactly: same event order, same drops, same timestamps.
The replay re-evaluates the world's invariants at every step, so a
counterexample is confirmed against live code, not trusted from the
exploration that found it -- and the tracer timeline of the replayed
run is the human-readable story of the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.check.explorer import Step, Violation
from repro.check.worlds import World


class ReplayError(RuntimeError):
    """The recorded path diverged from the rebuilt world."""


@dataclass
class ReplayResult:
    """One replayed counterexample."""

    world: World
    steps_run: int
    #: (step number, invariant name, message) for each step where a
    #: safety invariant failed; the final entry is the confirmed bug.
    failures: List[tuple] = field(default_factory=list)
    terminal_obligations: List[str] = field(default_factory=list)

    @property
    def confirmed(self) -> bool:
        """Did the replay reproduce a violation?"""
        return bool(self.failures) or bool(self.terminal_obligations)

    def timeline(self, category: Optional[str] = None) -> str:
        """The replayed run's trace timeline (the ``obs`` story)."""
        return self.world.tracer.render(category=category)

    def report(self) -> str:
        lines = [f"replayed {self.steps_run} step(s) on {self.world.name}"]
        for step_number, invariant, message in self.failures:
            lines.append(f"  step {step_number}: {invariant}: {message}")
        for obligation in self.terminal_obligations:
            lines.append(f"  at quiescence: {obligation}")
        return "\n".join(lines)


def replay(factory, path: List[Step],
           check_invariants: bool = True) -> ReplayResult:
    """Re-execute a counterexample path on a fresh world.

    ``factory`` must build the same world the path was recorded on
    (same preset, same active mutation).  Raises :class:`ReplayError`
    when the path no longer matches the world -- the signature of a
    stale counterexample after a code change.
    """
    world = factory()
    result = ReplayResult(world=world, steps_run=0)
    for number, step in enumerate(path, 1):
        head = world.sim.head_events()
        if step.event_index >= len(head):
            raise ReplayError(
                f"step {number}: path expects head event "
                f"#{step.event_index} but only {len(head)} enabled")
        event = head[step.event_index]
        label = event.label or getattr(event.fn, "__qualname__", "?")
        if label != step.label:
            raise ReplayError(
                f"step {number}: path recorded {step.label!r} "
                f"but the world offers {label!r}")
        world.oracle.begin(step.script)
        world.sim.step_event(event)
        result.steps_run = number
        if check_invariants:
            for invariant in world.invariants:
                message = invariant.check(world)
                if message is not None:
                    result.failures.append(
                        (number, invariant.name, message))
    if not world.sim.head_events():
        result.terminal_obligations = world.obligations()
    return result


def replay_violation(factory, violation: Violation) -> ReplayResult:
    """Replay one violation's path and confirm it reproduces."""
    return replay(factory, violation.path)
