"""reprocheck: bounded explicit-state model checking of the stack.

The simulator (:mod:`repro.sim.engine`) is deterministic: FIFO
tie-breaking among equal-time events picks *one* of the legal kernel
schedules.  reprocheck explores the others.  It drives a small "world"
(two or three stations plus a scripted workload) through every
reachable interleaving of same-instant events and every branch of the
fault choices (deliver/drop, collide, shed), checking safety
invariants at each state and liveness obligations at each terminal
state, with sleep-set partial-order reduction and visited-state
dedup keeping the walk tractable.

Entry points:

* :func:`repro.check.worlds.build_world` -- the preset worlds.
* :class:`repro.check.explorer.Explorer` -- the bounded search.
* :func:`repro.check.replay.replay` -- deterministic counterexample replay.
* ``python -m repro mc`` -- the CLI gate (presets + mutation gate).
"""

from repro.check.explorer import Budget, ExplorationResult, Explorer, Violation
from repro.check.invariants import Invariant
from repro.check.replay import replay
from repro.check.snapshot import StateCapturer, fingerprint
from repro.check.worlds import WORLDS, build_world

__all__ = [
    "Budget",
    "ExplorationResult",
    "Explorer",
    "Invariant",
    "StateCapturer",
    "Violation",
    "WORLDS",
    "build_world",
    "fingerprint",
    "replay",
]
