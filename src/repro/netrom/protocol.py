"""NET/ROM wire formats.

Two kinds of payload ride AX.25 frames with PID ``0xCF``:

* **network datagrams**: origin callsign (7 bytes, AX.25 encoding),
  destination callsign (7), TTL (1) -- followed here by a protocol
  byte and payload.  (Real NET/ROM follows the TTL with its circuit
  transport header; we carry a protocol discriminator instead so IP
  datagrams can be tunnelled without the full circuit layer.  This is
  the same simplification KA9Q-era IP-over-NET/ROM effectively made
  and is documented in DESIGN.md.)
* **NODES broadcasts**: a 0xFF signature, the sending node's 6-char
  mnemonic, then (destination, alias, best-neighbour, quality)
  records -- the routing gossip that builds every node's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ax25.address import AX25Address

NODES_SIGNATURE = 0xFF

#: protocol discriminators for the datagram payload
NETROM_PROTO_TEXT = 0x00
NETROM_PROTO_IP = 0x0C

_ADDR_LEN = 7
_MNEMONIC_LEN = 6
_ENTRY_LEN = _ADDR_LEN + _MNEMONIC_LEN + _ADDR_LEN + 1


class NetRomError(ValueError):
    """Raised for undecodable NET/ROM payloads."""


@dataclass(frozen=True)
class NetRomPacket:
    """A NET/ROM network-layer datagram."""

    origin: AX25Address
    destination: AX25Address
    ttl: int
    protocol: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialise to the wire byte string."""
        return (
            self.origin.encode(last=True)
            + self.destination.encode(last=True)
            + bytes((self.ttl & 0xFF, self.protocol & 0xFF))
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "NetRomPacket":
        """Parse the wire byte string; raises on malformed input."""
        if len(data) < 2 * _ADDR_LEN + 2:
            raise NetRomError("NET/ROM packet too short")
        if data[0] == NODES_SIGNATURE:
            raise NetRomError("NODES broadcast, not a datagram")
        try:
            origin, _last, _bit = AX25Address.decode(data[:_ADDR_LEN])
            destination, _last, _bit = AX25Address.decode(data[_ADDR_LEN : 2 * _ADDR_LEN])
        except ValueError as exc:
            raise NetRomError(str(exc)) from exc
        ttl = data[2 * _ADDR_LEN]
        protocol = data[2 * _ADDR_LEN + 1]
        return cls(origin.base, destination.base, ttl, protocol,
                   bytes(data[2 * _ADDR_LEN + 2 :]))

    def decremented(self) -> "NetRomPacket":
        """Copy with TTL reduced by one."""
        return NetRomPacket(self.origin, self.destination, self.ttl - 1,
                            self.protocol, self.payload)

    def __str__(self) -> str:
        return (
            f"NET/ROM {self.origin}>{self.destination} ttl={self.ttl} "
            f"proto=0x{self.protocol:02x} len={len(self.payload)}"
        )


@dataclass(frozen=True)
class NodesEntry:
    """One destination record in a NODES broadcast."""

    destination: AX25Address
    alias: str
    best_neighbour: AX25Address
    quality: int

    def encode(self) -> bytes:
        """Serialise to the wire byte string."""
        alias = self.alias.upper().ljust(_MNEMONIC_LEN)[:_MNEMONIC_LEN]
        return (
            self.destination.encode(last=True)
            + alias.encode("ascii")
            + self.best_neighbour.encode(last=True)
            + bytes((self.quality & 0xFF,))
        )


@dataclass(frozen=True)
class NodesBroadcast:
    """A full NODES routing broadcast."""

    sender_alias: str
    entries: Tuple[NodesEntry, ...]

    def encode(self) -> bytes:
        """Serialise to the wire byte string."""
        alias = self.sender_alias.upper().ljust(_MNEMONIC_LEN)[:_MNEMONIC_LEN]
        out = bytearray((NODES_SIGNATURE,))
        out += alias.encode("ascii")
        for entry in self.entries:
            out += entry.encode()
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "NodesBroadcast":
        """Parse the wire byte string; raises on malformed input."""
        if not data or data[0] != NODES_SIGNATURE:
            raise NetRomError("not a NODES broadcast")
        if len(data) < 1 + _MNEMONIC_LEN:
            raise NetRomError("NODES broadcast truncated")
        alias = data[1 : 1 + _MNEMONIC_LEN].decode("ascii", "replace").rstrip()
        entries: List[NodesEntry] = []
        offset = 1 + _MNEMONIC_LEN
        while offset + _ENTRY_LEN <= len(data):
            block = data[offset : offset + _ENTRY_LEN]
            destination, _l, _b = AX25Address.decode(block[:_ADDR_LEN])
            entry_alias = block[_ADDR_LEN : _ADDR_LEN + _MNEMONIC_LEN].decode(
                "ascii", "replace"
            ).rstrip()
            neighbour, _l, _b = AX25Address.decode(
                block[_ADDR_LEN + _MNEMONIC_LEN : 2 * _ADDR_LEN + _MNEMONIC_LEN]
            )
            quality = block[-1]
            entries.append(
                NodesEntry(destination.base, entry_alias, neighbour.base, quality)
            )
            offset += _ENTRY_LEN
        return cls(alias, tuple(entries))
