"""NET/ROM transport: circuits over the node network (level 4).

"With NET/ROM, users would connect to a node on the network.  They
would then connect to the NET/ROM node nearest their destination.
Finally, they would connect to their destination."  The middle step
rides *circuits*: reliable byte pipes between two nodes, multiplexed by
circuit index/id over the datagram network layer.

Faithful to the Software 2000 protocol in structure -- five-byte
transport header (circuit index, circuit id, tx-seq, rx-seq, opcode),
the five opcodes (connect request/ack, disconnect request/ack,
information, information ack) -- with a stop-and-wait window (the
protocol's window negotiation collapses to w=1 here; documented
simplification) and timer-based retransmission.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.ax25.address import AX25Address
from repro.netrom.routing import NetRomNode
from repro.sim.clock import SECOND
from repro.sim.engine import Event

#: network-layer protocol byte carrying transport frames
NETROM_PROTO_TRANSPORT = 0x01

OP_CONNECT_REQUEST = 1
OP_CONNECT_ACK = 2
OP_DISCONNECT_REQUEST = 3
OP_DISCONNECT_ACK = 4
OP_INFORMATION = 5
OP_INFORMATION_ACK = 6

#: "connection refused" is a CONNECT_ACK with the refusal flag set.
FLAG_REFUSED = 0x80


class TransportError(ValueError):
    """Raised for undecodable transport frames."""


@dataclass(frozen=True)
class TransportFrame:
    """The five-byte NET/ROM transport header plus payload."""

    circuit_index: int
    circuit_id: int
    tx_seq: int
    rx_seq: int
    opcode: int
    payload: bytes = b""

    def encode(self) -> bytes:
        """Serialise to the wire byte string."""
        return bytes((
            self.circuit_index & 0xFF,
            self.circuit_id & 0xFF,
            self.tx_seq & 0xFF,
            self.rx_seq & 0xFF,
            self.opcode & 0xFF,
        )) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "TransportFrame":
        """Parse the wire byte string; raises on malformed input."""
        if len(data) < 5:
            raise TransportError("transport frame shorter than header")
        return cls(data[0], data[1], data[2], data[3], data[4], bytes(data[5:]))

    @property
    def base_opcode(self) -> int:
        """Opcode with the flag bits masked off."""
        return self.opcode & 0x0F

    @property
    def refused(self) -> bool:
        """True when the refusal flag is set."""
        return bool(self.opcode & FLAG_REFUSED)


class CircuitState(enum.Enum):
    """Circuit lifecycle states."""

    CONNECTING = "connecting"
    ESTABLISHED = "established"
    CLOSING = "closing"
    CLOSED = "closed"


class Circuit:
    """One reliable byte pipe between two nodes.

    Applications attach ``on_connect`` / ``on_data`` / ``on_close``
    callbacks and call :meth:`send` / :meth:`close`.
    """

    RETRY_INTERVAL = 20 * SECOND
    MAX_RETRIES = 5
    MAX_INFO = 200   # payload per INFO frame

    def __init__(self, transport: "NetRomTransport", remote: AX25Address,
                 local_index: int, local_id: int) -> None:
        self.transport = transport
        self.sim = transport.node.sim
        self.remote = remote
        self.local_index = local_index
        self.local_id = local_id
        self.remote_index: Optional[int] = None
        self.remote_id: Optional[int] = None
        self.state = CircuitState.CONNECTING
        self.vs = 0
        self.vr = 0
        self._send_queue: Deque[bytes] = deque()
        self._in_flight: Optional[bytes] = None
        self._timer: Optional[Event] = None
        self._retries = 0

        self.on_connect: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None
        self.stats = {"info_sent": 0, "info_rexmit": 0, "info_received": 0}

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Send bytes to the peer."""
        if self.state not in (CircuitState.CONNECTING, CircuitState.ESTABLISHED):
            raise TransportError(f"circuit to {self.remote} is {self.state.value}")
        for start in range(0, len(data), self.MAX_INFO):
            self._send_queue.append(data[start : start + self.MAX_INFO])
        self._pump()

    def close(self) -> None:
        """Close this end."""
        if self.state in (CircuitState.CLOSED, CircuitState.CLOSING):
            return
        self.state = CircuitState.CLOSING
        self._cancel_timer()
        self._retries = 0
        self._emit(OP_DISCONNECT_REQUEST)
        self._arm_timer()

    @property
    def established(self) -> bool:
        """True once the connection/circuit is established."""
        return self.state is CircuitState.ESTABLISHED

    # ------------------------------------------------------------------
    # outbound machinery
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if (self.state is not CircuitState.ESTABLISHED
                or self._in_flight is not None or not self._send_queue):
            return
        self._in_flight = self._send_queue.popleft()
        self.stats["info_sent"] += 1
        self._emit(OP_INFORMATION, self._in_flight)
        self._retries = 0
        self._arm_timer()

    def _emit(self, opcode: int, payload: bytes = b"") -> None:
        frame = TransportFrame(
            circuit_index=self.remote_index if self.remote_index is not None else 0,
            circuit_id=self.remote_id if self.remote_id is not None else 0,
            tx_seq=self.vs,
            rx_seq=self.vr,
            opcode=opcode,
            payload=payload,
        )
        if opcode == OP_CONNECT_REQUEST:
            # connect request carries *our* index/id in the payload head
            frame = TransportFrame(0, 0, self.local_index, self.local_id,
                                   opcode, payload)
        self.transport.output(self.remote, frame)

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(
            self.RETRY_INTERVAL, self._timer_fired,
            label=f"netrom-circuit {self.remote}",
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timer_fired(self) -> None:
        self._timer = None
        self._retries += 1
        if self._retries > self.MAX_RETRIES:
            self._enter_closed("retry limit")
            return
        if self.state is CircuitState.CONNECTING:
            self._emit(OP_CONNECT_REQUEST, self._connect_payload())
            self._arm_timer()
        elif self.state is CircuitState.CLOSING:
            self._emit(OP_DISCONNECT_REQUEST)
            self._arm_timer()
        elif self.state is CircuitState.ESTABLISHED and self._in_flight is not None:
            self.stats["info_rexmit"] += 1
            self._emit(OP_INFORMATION, self._in_flight)
            self._arm_timer()

    def _connect_payload(self) -> bytes:
        # window proposal (1) + originating user + originating node
        return bytes((1,)) + self.transport.node.callsign.encode(last=True) * 2

    # ------------------------------------------------------------------
    # inbound machinery (driven by NetRomTransport)
    # ------------------------------------------------------------------

    def handle(self, frame: TransportFrame) -> None:
        """Process one received frame."""
        opcode = frame.base_opcode
        if opcode == OP_CONNECT_ACK:
            self._on_connect_ack(frame)
        elif opcode == OP_INFORMATION:
            self._on_information(frame)
        elif opcode == OP_INFORMATION_ACK:
            self._on_information_ack(frame)
        elif opcode == OP_DISCONNECT_REQUEST:
            self._emit(OP_DISCONNECT_ACK)
            self._enter_closed("remote closed")
        elif opcode == OP_DISCONNECT_ACK:
            if self.state is CircuitState.CLOSING:
                self._enter_closed("closed")

    def _on_connect_ack(self, frame: TransportFrame) -> None:
        if self.state is not CircuitState.CONNECTING:
            return
        if frame.refused:
            self._enter_closed("refused")
            return
        # ack carries the acceptor's index/id in tx_seq/rx_seq
        self.remote_index = frame.tx_seq
        self.remote_id = frame.rx_seq
        self.state = CircuitState.ESTABLISHED
        self._cancel_timer()
        self._retries = 0
        if self.on_connect is not None:
            self.on_connect()
        self._pump()

    def _on_information(self, frame: TransportFrame) -> None:
        if self.state is not CircuitState.ESTABLISHED:
            return
        if frame.tx_seq == self.vr:
            self.vr = (self.vr + 1) & 0xFF
            self.stats["info_received"] += 1
            if self.on_data is not None:
                self.on_data(frame.payload)
        # ack whatever we now expect (duplicate INFO re-acked)
        self._emit(OP_INFORMATION_ACK)

    def _on_information_ack(self, frame: TransportFrame) -> None:
        if self._in_flight is None:
            return
        expected = (self.vs + 1) & 0xFF
        if frame.rx_seq == expected:
            self.vs = expected
            self._in_flight = None
            self._cancel_timer()
            self._retries = 0
            self._pump()

    def _enter_closed(self, reason: str) -> None:
        if self.state is CircuitState.CLOSED:
            return
        self.state = CircuitState.CLOSED
        self._cancel_timer()
        self.transport.forget(self)
        if self.on_close is not None:
            self.on_close(reason)


class NetRomTransport:
    """Circuit multiplexer bound to one :class:`NetRomNode`."""

    def __init__(self, node: NetRomNode) -> None:
        self.node = node
        self._next_index = 0
        #: circuits keyed by (our index, our id)
        self._circuits: Dict[Tuple[int, int], Circuit] = {}
        #: accept callback for incoming circuits: ``f(circuit)`` returning
        #: False refuses the connection.
        self.on_circuit: Optional[Callable[[Circuit], bool]] = None
        node.bind_protocol(NETROM_PROTO_TRANSPORT, self._input)
        self.circuits_opened = 0
        self.circuits_accepted = 0
        self.circuits_refused = 0

    # ------------------------------------------------------------------

    def connect(self, remote: "AX25Address | str") -> Circuit:
        """Open a circuit to the node ``remote``."""
        remote = (
            remote if isinstance(remote, AX25Address) else AX25Address.parse(remote)
        )
        circuit = self._allocate(remote)
        self.circuits_opened += 1
        circuit._emit(OP_CONNECT_REQUEST, circuit._connect_payload())
        circuit._arm_timer()
        return circuit

    def _allocate(self, remote: AX25Address) -> Circuit:
        self._next_index = (self._next_index + 1) & 0xFF
        local_id = (self._next_index * 7 + 1) & 0xFF
        circuit = Circuit(self, remote, self._next_index, local_id)
        self._circuits[(circuit.local_index, circuit.local_id)] = circuit
        return circuit

    def forget(self, circuit: Circuit) -> None:
        """Drop internal state for the given object."""
        self._circuits.pop((circuit.local_index, circuit.local_id), None)

    def output(self, remote: AX25Address, frame: TransportFrame) -> None:
        """Hand a frame/packet to the layer below."""
        self.node.send(remote, NETROM_PROTO_TRANSPORT, frame.encode())

    # ------------------------------------------------------------------

    def _input(self, payload: bytes, origin: AX25Address) -> None:
        try:
            frame = TransportFrame.decode(payload)
        except TransportError:
            return
        if frame.base_opcode == OP_CONNECT_REQUEST:
            self._accept(frame, origin)
            return
        circuit = self._circuits.get((frame.circuit_index, frame.circuit_id))
        if circuit is None:
            return
        circuit.handle(frame)

    def _accept(self, frame: TransportFrame, origin: AX25Address) -> None:
        # the requester's index/id arrive in tx_seq/rx_seq
        their_index, their_id = frame.tx_seq, frame.rx_seq
        # Duplicate CONNECT (our ack was lost): re-ack the existing circuit.
        for circuit in self._circuits.values():
            if (circuit.remote_index == their_index
                    and circuit.remote_id == their_id
                    and circuit.remote.matches(origin)):
                circuit._emit(OP_CONNECT_ACK)
                return
        circuit = self._allocate(origin)
        circuit.remote_index = their_index
        circuit.remote_id = their_id
        accepted = True
        if self.on_circuit is not None:
            accepted = self.on_circuit(circuit)
        if not accepted:
            self.circuits_refused += 1
            refusal = TransportFrame(their_index, their_id, 0, 0,
                                     OP_CONNECT_ACK | FLAG_REFUSED)
            self.output(origin, refusal)
            self.forget(circuit)
            return
        self.circuits_accepted += 1
        circuit.state = CircuitState.ESTABLISHED
        # our index/id ride back in tx_seq/rx_seq of the ack
        ack = TransportFrame(their_index, their_id,
                             circuit.local_index, circuit.local_id,
                             OP_CONNECT_ACK)
        self.output(origin, ack)
        if circuit.on_connect is not None:
            circuit.on_connect()
