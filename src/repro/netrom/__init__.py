"""NET/ROM: the node-network layer 3 of the late-1980s packet world.

"Work is also proceeding on using another layer three protocol known as
NET/ROM to pass IP traffic between gateways.  Doing this would allow
the use of an existing, and growing, point-to-point backbone in the
same way Internet subnets are connected via the ARPANET." (§2.4)

* :mod:`~repro.netrom.protocol` -- NET/ROM packet format and the NODES
  routing-broadcast format.
* :mod:`~repro.netrom.routing` -- :class:`NetRomNode`: a node with one
  radio port per backbone link, quality-based route learning from
  NODES broadcasts, and TTL-checked forwarding.
* :mod:`~repro.netrom.backbone` -- :class:`NetRomIpInterface`: an IP
  interface that tunnels datagrams through the node network, letting
  two gateways reach each other across the backbone.
"""

from repro.netrom.backbone import NetRomIpInterface
from repro.netrom.protocol import NODES_SIGNATURE, NetRomError, NetRomPacket, NodesBroadcast, NodesEntry
from repro.netrom.nodeshell import NodeShell
from repro.netrom.routing import NetRomNode, NetRomRoute
from repro.netrom.transport import Circuit, NetRomTransport, TransportFrame

__all__ = [
    "Circuit",
    "NODES_SIGNATURE",
    "NetRomTransport",
    "NodeShell",
    "TransportFrame",
    "NetRomError",
    "NetRomIpInterface",
    "NetRomNode",
    "NetRomPacket",
    "NetRomRoute",
    "NodesBroadcast",
    "NodesEntry",
]
