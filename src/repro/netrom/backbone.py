"""IP over the NET/ROM backbone (§2.4 future work).

:class:`NetRomIpInterface` is a BSD interface whose link layer is the
node network: ``if_output`` wraps each IP datagram in a NET/ROM
datagram addressed to the node co-located with the next-hop gateway,
and datagrams arriving for this node with the IP protocol byte are fed
to the stack's input queue.  Address resolution is a static IP-to-node
mapping (the backbone's node set was hand-configured in practice --
there was no ARP over NET/ROM).
"""

from __future__ import annotations

from typing import Dict

from repro.ax25.address import AX25Address
from repro.inet.ip import IPv4Address
from repro.netif.ifnet import InterfaceFlags, NetworkInterface
from repro.netrom.protocol import NETROM_PROTO_IP
from repro.netrom.routing import NetRomNode
from repro.sim.engine import Simulator

#: Conservative MTU: NET/ROM nodes relay AX.25 frames with 256-byte
#: info fields; the 16-byte NET/ROM header comes out of that budget.
NETROM_IP_MTU = 236


class NetRomIpInterface(NetworkInterface):
    """nr0: an IP interface tunnelling through a NET/ROM node."""

    def __init__(self, sim: Simulator, node: NetRomNode, name: str = "nr0",
                 mtu: int = NETROM_IP_MTU) -> None:
        super().__init__(sim, name, mtu,
                         flags=InterfaceFlags.UP | InterfaceFlags.POINTOPOINT)
        self.node = node
        #: next-hop IP -> destination node callsign
        self._ip_to_node: Dict[int, AX25Address] = {}
        node.bind_protocol(NETROM_PROTO_IP, self._ip_from_netrom)
        self.unresolved_drops = 0

    def map_ip(self, ip: "IPv4Address | str", node_callsign: "AX25Address | str") -> None:
        """Declare that ``ip`` is reached via the node ``node_callsign``."""
        ip = IPv4Address.coerce(ip)
        callsign = (
            node_callsign if isinstance(node_callsign, AX25Address)
            else AX25Address.parse(node_callsign)
        )
        self._ip_to_node[ip.value] = callsign

    def if_output(self, packet: bytes, next_hop: IPv4Address,
                  protocol: str = "ip") -> bool:
        """Transmit one layer-3 packet toward the next hop."""
        if not self.is_up:
            self.oerrors += 1
            return False
        target = self._ip_to_node.get(next_hop.value)
        if target is None:
            self.unresolved_drops += 1
            self.oerrors += 1
            return False
        self.count_output(packet)
        return self.node.send(target, NETROM_PROTO_IP, packet)

    def _ip_from_netrom(self, payload: bytes, origin: AX25Address) -> None:
        self.deliver_input(payload, "ip")
