"""NET/ROM nodes: route learning and datagram forwarding.

A node owns one radio port per backbone link (NET/ROM backbones are
point-to-point links on *separate* frequencies -- that is what makes
them better than same-frequency digipeater chains).  Nodes periodically
broadcast their routing table in NODES frames; receivers derive route
quality as ``neighbour_quality * path_quality / 256`` (the classic
NET/ROM formula) and keep the best route per destination.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.ax25.address import AX25Address, is_broadcast
from repro.ax25.defs import PID_NETROM
from repro.ax25.frames import AX25Frame, FrameError, FrameType
from repro.netrom.protocol import (
    NODES_SIGNATURE,
    NetRomError,
    NetRomPacket,
    NodesBroadcast,
    NodesEntry,
)
from repro.radio.channel import RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.radio.station import RadioStation
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

#: Default initial TTL for originated datagrams.
DEFAULT_TTL = 16
#: Quality assigned to a direct neighbour link.
NEIGHBOUR_QUALITY = 255
#: Routes below this derived quality are not used or re-advertised.
MIN_QUALITY = 10
#: NODES broadcast interval (real NET/ROM used ~30 min; scaled down).
DEFAULT_BROADCAST_INTERVAL = 60 * SECOND


@dataclass
class NetRomRoute:
    """Best known route to one destination node."""

    destination: AX25Address
    alias: str
    neighbour: AX25Address
    quality: int
    learned_at: int


@dataclass
class _Port:
    station: RadioStation
    #: Neighbour callsigns reachable out this port.
    neighbours: Dict[str, int]


class NetRomNode:
    """One NET/ROM node (a hilltop box with one radio per link)."""

    def __init__(
        self,
        sim: Simulator,
        callsign: "AX25Address | str",
        alias: str,
        tracer: Optional[Tracer] = None,
        broadcast_interval: int = DEFAULT_BROADCAST_INTERVAL,
    ) -> None:
        self.sim = sim
        self.callsign = (
            callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
        )
        self.alias = alias.upper()[:6]
        self.tracer = tracer
        self.broadcast_interval = broadcast_interval
        self._ports: List[_Port] = []
        self.routes: Dict[str, NetRomRoute] = {}
        #: local protocol handlers: proto byte -> f(payload, origin)
        self.protocols: Dict[int, Callable[[bytes, AX25Address], None]] = {}

        self.datagrams_originated = 0
        self.datagrams_forwarded = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.nodes_broadcasts_sent = 0
        self.nodes_broadcasts_received = 0
        self._broadcast_scheduled = False
        #: Hook for non-NET/ROM frames heard on the user port (terminal
        #: users connecting to the node's callsign over plain AX.25);
        #: installed by :class:`repro.netrom.nodeshell.NodeShell`.
        self.on_user_frame: Optional[Callable[[AX25Frame], None]] = None

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------

    def add_port(self, channel: RadioChannel, modem: Optional[ModemProfile] = None,
                 csma: Optional[CsmaParameters] = None) -> RadioStation:
        """Attach a radio on ``channel`` (one per backbone link)."""
        index = len(self._ports)
        station = RadioStation(
            self.sim,
            channel,
            f"{self.callsign}#{index}",
            modem=modem,
            csma=csma,
            on_frame=partial(self._from_air, port_index=index),
        )
        self._ports.append(_Port(station=station, neighbours={}))
        return station

    def add_neighbour(self, port_index: int, callsign: "AX25Address | str",
                      quality: int = NEIGHBOUR_QUALITY) -> None:
        """Statically declare a neighbour node out a given port."""
        callsign = (
            callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
        )
        self._ports[port_index].neighbours[str(callsign)] = quality
        # A neighbour is trivially a destination too.
        self._update_route(callsign, callsign.callsign, callsign, quality)

    def start_broadcasting(self) -> None:
        """Begin periodic NODES broadcasts.

        Each node staggers its schedule by a deterministic per-callsign
        offset so that co-channel nodes do not key up in lockstep and
        collide every interval.
        """
        if not self._broadcast_scheduled:
            self._broadcast_scheduled = True
            self.sim.schedule(self._stagger(), self._broadcast_tick,
                              label=f"netrom-nodes {self.callsign}")

    def _stagger(self) -> int:
        digest = hashlib.sha256(str(self.callsign).encode()).digest()
        return int.from_bytes(digest[:4], "big") % (5 * SECOND)

    # ------------------------------------------------------------------
    # datagram service
    # ------------------------------------------------------------------

    def send(self, destination: "AX25Address | str", protocol: int,
             payload: bytes, ttl: int = DEFAULT_TTL) -> bool:
        """Originate a datagram into the node network."""
        destination = (
            destination if isinstance(destination, AX25Address)
            else AX25Address.parse(destination)
        )
        packet = NetRomPacket(self.callsign, destination, ttl, protocol, payload)
        self.datagrams_originated += 1
        return self._route_packet(packet)

    def bind_protocol(self, protocol: int,
                      handler: Callable[[bytes, AX25Address], None]) -> None:
        """Register a handler for a protocol discriminator."""
        self.protocols[protocol] = handler

    # ------------------------------------------------------------------
    # forwarding machinery
    # ------------------------------------------------------------------

    def _route_packet(self, packet: NetRomPacket) -> bool:
        if packet.destination.matches(self.callsign):
            self._deliver(packet)
            return True
        if packet.ttl <= 0:
            self.datagrams_dropped += 1
            return False
        route = self.routes.get(str(packet.destination))
        if route is None or route.quality < MIN_QUALITY:
            self.datagrams_dropped += 1
            if self.tracer is not None:
                self.tracer.log("netrom.noroute", str(self.callsign),
                                str(packet.destination))
            return False
        port = self._port_for_neighbour(route.neighbour)
        if port is None:
            self.datagrams_dropped += 1
            return False
        frame = AX25Frame.ui(
            route.neighbour, self.callsign, PID_NETROM, packet.encode()
        )
        port.station.send_frame(frame.encode())
        return True

    def _port_for_neighbour(self, neighbour: AX25Address) -> Optional[_Port]:
        key = str(neighbour)
        for port in self._ports:
            if key in port.neighbours:
                return port
        return None

    def _deliver(self, packet: NetRomPacket) -> None:
        self.datagrams_delivered += 1
        handler = self.protocols.get(packet.protocol)
        if handler is not None:
            handler(packet.payload, packet.origin)
        elif self.tracer is not None:
            self.tracer.log("netrom.unbound", str(self.callsign),
                            f"proto=0x{packet.protocol:02x}")

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _from_air(self, payload: bytes, port_index: int) -> None:
        try:
            frame = AX25Frame.decode(payload)
        except FrameError:
            return
        if frame.frame_type is not FrameType.UI or frame.pid != PID_NETROM:
            if self.on_user_frame is not None:
                self.on_user_frame(frame)
            return
        for_me = frame.destination.matches(self.callsign)
        broadcast = is_broadcast(frame.destination) or frame.destination.callsign == "NODES"
        if not (for_me or broadcast):
            return
        if frame.info and frame.info[0] == NODES_SIGNATURE:
            self._nodes_input(frame.info, frame.source, port_index)
            return
        try:
            packet = NetRomPacket.decode(frame.info)
        except NetRomError:
            return
        if packet.destination.matches(self.callsign):
            self._deliver(packet)
            return
        self.datagrams_forwarded += 1
        self._route_packet(packet.decremented())

    # ------------------------------------------------------------------
    # NODES gossip
    # ------------------------------------------------------------------

    def _broadcast_tick(self) -> None:
        self._send_nodes_broadcast()
        self.sim.schedule(self.broadcast_interval, self._broadcast_tick,
                          label=f"netrom-nodes {self.callsign}")

    def _send_nodes_broadcast(self) -> None:
        # Sorted on the destination callsign so NODES wire order is a
        # protocol property, not gossip-arrival order (DETFLOW002).
        entries = tuple(
            NodesEntry(route.destination, route.alias, route.neighbour, route.quality)
            for route in sorted(self.routes.values(),
                                key=lambda r: str(r.destination))
            if route.quality >= MIN_QUALITY
        )
        broadcast = NodesBroadcast(self.alias, entries)
        frame = AX25Frame.ui(
            AX25Address("NODES"), self.callsign, PID_NETROM, broadcast.encode()
        )
        self.nodes_broadcasts_sent += 1
        for port in self._ports:
            port.station.send_frame(frame.encode())

    def _nodes_input(self, data: bytes, sender: AX25Address,
                     port_index: int) -> None:
        try:
            broadcast = NodesBroadcast.decode(data)
        except NetRomError:
            return
        self.nodes_broadcasts_received += 1
        port = self._ports[port_index]
        neighbour_quality = port.neighbours.get(str(sender))
        if neighbour_quality is None:
            # Hearing a broadcast makes the sender a neighbour.
            neighbour_quality = NEIGHBOUR_QUALITY
            port.neighbours[str(sender)] = neighbour_quality
        self._update_route(sender, broadcast.sender_alias, sender, neighbour_quality)
        for entry in broadcast.entries:
            if entry.destination.matches(self.callsign):
                continue
            derived = neighbour_quality * entry.quality // 256
            self._update_route(entry.destination, entry.alias, sender, derived)

    def _update_route(self, destination: AX25Address, alias: str,
                      neighbour: AX25Address, quality: int) -> None:
        if quality < MIN_QUALITY:
            return
        key = str(destination)
        existing = self.routes.get(key)
        refresh = (
            existing is not None
            and quality == existing.quality
            and neighbour.matches(existing.neighbour)
        )
        if existing is None or quality > existing.quality or refresh:
            self.routes[key] = NetRomRoute(
                destination=destination.base,
                alias=alias,
                neighbour=neighbour.base,
                quality=quality,
                learned_at=self.sim.now,
            )
            if self.tracer is not None:
                self.tracer.log("netrom.route", str(self.callsign),
                                f"{destination} via {neighbour} q={quality}")
