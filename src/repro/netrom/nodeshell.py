"""The NET/ROM node's user shell -- the three-connect workflow.

"With NET/ROM, users would connect to a node on the network.  They
would then connect to the NET/ROM node nearest their destination.
Finally, they would connect to their destination.  ... Users still had
to know the name of their local node and the name of the node closest
to their destination."  (Paper, introduction.)

:class:`NodeShell` gives a :class:`~repro.netrom.routing.NetRomNode`
exactly that user interface:

* terminal users connect to the node's callsign over plain AX.25;
* the shell offers ``NODES`` (the route table), ``CONNECT <node>``
  (opens a NET/ROM circuit and bridges the session to the remote
  node's shell), ``CONNECT <station>`` at the far node (bridges to a
  local AX.25 connection), ``INFO`` and ``BYE``;
* incoming circuits get a shell session of their own, so the chain
  user → nodeA → nodeB → destination composes.

The session abstraction is a byte pipe; LAPB connections and NET/ROM
circuits both implement it, which is what lets sessions chain.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

from repro.ax25.address import AX25Address, AddressError
from repro.ax25.frames import AX25Frame, FrameType
from repro.ax25.lapb import LapbConnection, LapbEndpoint
from repro.netrom.routing import NetRomNode
from repro.netrom.transport import Circuit, NetRomTransport
from repro.sim.clock import SECOND


class _Pipe:
    """A byte pipe a shell session runs over (LAPB link or circuit)."""

    def send(self, data: bytes) -> None:
        """Send bytes to the peer."""
        raise NotImplementedError

    def close(self) -> None:
        """Close this end."""
        raise NotImplementedError

    @property
    def remote_label(self) -> str:
        """Display name of the remote end."""
        raise NotImplementedError


class _LapbPipe(_Pipe):
    def __init__(self, conn: LapbConnection) -> None:
        self.conn = conn

    def send(self, data: bytes) -> None:
        """Send bytes to the peer."""
        if self.conn.connected:
            self.conn.send(data)

    def close(self) -> None:
        """Close this end."""
        self.conn.disconnect()

    @property
    def remote_label(self) -> str:
        """Display name of the remote end."""
        return str(self.conn.remote)


class _CircuitPipe(_Pipe):
    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit

    def send(self, data: bytes) -> None:
        """Send bytes to the peer."""
        if self.circuit.state.value in ("connecting", "established"):
            self.circuit.send(data)

    def close(self) -> None:
        """Close this end."""
        self.circuit.close()

    @property
    def remote_label(self) -> str:
        """Display name of the remote end."""
        return str(self.circuit.remote)


class _Session:
    """One user session at a node: a command loop plus optional bridge."""

    def __init__(self, shell: "NodeShell", pipe: _Pipe) -> None:
        self.shell = shell
        self.pipe = pipe
        self.buffer = bytearray()
        self.bridge: Optional[_Pipe] = None
        self._bridge_pending = False
        self.pipe.send(
            f"{shell.node.alias}:{shell.node.callsign}> NET/ROM node. "
            f"NODES CONNECT INFO BYE\r".encode("latin-1")
        )

    # -- data in from the user side --------------------------------------

    def data(self, chunk: bytes) -> None:
        """Consume bytes arriving from the remote end."""
        if self.bridge is not None:
            self.bridge.send(chunk)
            return
        self.buffer += chunk
        while True:
            index = min((i for i in (self.buffer.find(b"\r"),
                                     self.buffer.find(b"\n")) if i >= 0),
                        default=-1)
            if index < 0:
                return
            line = bytes(self.buffer[:index]).decode("latin-1").strip()
            del self.buffer[: index + 1]
            if line:
                self.command(line)

    # -- data back from the bridged side ----------------------------------

    def bridge_data(self, chunk: bytes) -> None:
        """Relay bytes from the bridged side to the user."""
        self.pipe.send(chunk)

    def bridge_closed(self, reason: str) -> None:
        """The bridged side went away; notify the user."""
        self.bridge = None
        self._bridge_pending = False
        self.pipe.send(f"*** bridge closed ({reason})\r".encode("latin-1"))

    # -- commands ----------------------------------------------------------

    def command(self, line: str) -> None:
        """Execute one command line."""
        words = line.split()
        verb = words[0].upper()
        if verb == "NODES":
            self.cmd_nodes()
        elif verb in ("CONNECT", "C") and len(words) > 1:
            self.cmd_connect(words[1])
        elif verb == "INFO":
            self.pipe.send(
                f"{self.shell.node.alias}: NET/ROM node, "
                f"{len(self.shell.node.routes)} routes known\r".encode()
            )
        elif verb in ("BYE", "B", "QUIT"):
            self.pipe.send(b"73\r")
            self.pipe.close()
        else:
            self.pipe.send(b"NODES CONNECT INFO BYE\r")

    def cmd_nodes(self) -> None:
        """The NODES command: print the route table."""
        node = self.shell.node
        if not node.routes:
            self.pipe.send(b"no routes\r")
            return
        for route in sorted(node.routes.values(), key=lambda r: str(r.destination)):
            self.pipe.send(
                f"{route.alias:<6} {str(route.destination):<9} "
                f"via {route.neighbour} q={route.quality}\r".encode("latin-1")
            )

    def cmd_connect(self, target_text: str) -> None:
        """The CONNECT command: bridge to a node or local station."""
        if self._bridge_pending or self.bridge is not None:
            self.pipe.send(b"*** already connected\r")
            return
        node = self.shell.node
        # Resolution order mirrors real node firmware: a known alias or
        # node callsign goes across the network; anything else is tried
        # as a station on the local frequency.
        alias_target = self.shell.resolve_alias(target_text)
        if alias_target is not None:
            self._connect_circuit(alias_target)
            return
        try:
            target = AX25Address.parse(target_text)
        except AddressError:
            self.pipe.send(f"*** unknown {target_text}\r".encode())
            return
        if str(target) in node.routes:
            self._connect_circuit(target)
        else:
            self._connect_local(target)

    def _connect_circuit(self, target: AX25Address) -> None:
        self.pipe.send(f"*** trying node {target} via NET/ROM...\r".encode())
        self._bridge_pending = True
        circuit = self.shell.transport.connect(target)
        pipe = _CircuitPipe(circuit)

        def on_connect() -> None:
            self._bridge_pending = False
            self.bridge = pipe
        circuit.on_connect = on_connect
        circuit.on_data = self.bridge_data
        circuit.on_close = self.bridge_closed

    def _connect_local(self, target: AX25Address) -> None:
        self.pipe.send(f"*** trying station {target} on the air...\r".encode())
        self._bridge_pending = True
        conn = self.shell.endpoint.connect(target)
        pipe = _LapbPipe(conn)
        self.shell.register_outgoing(conn, self, pipe)

    def attach_local_bridge(self, pipe: _Pipe) -> None:
        """Wire an established final-hop AX.25 link into the session."""
        self._bridge_pending = False
        self.bridge = pipe

    def closed(self) -> None:
        """The user side went away: tear down any bridge."""
        if self.bridge is not None:
            bridge, self.bridge = self.bridge, None
            bridge.close()


class NodeShell:
    """User access for a NET/ROM node: AX.25 in, circuits across."""

    def __init__(self, node: NetRomNode, transport: Optional[NetRomTransport] = None,
                 user_port: int = 0) -> None:
        self.node = node
        self.transport = transport if transport is not None else NetRomTransport(node)
        self.transport.on_circuit = self._incoming_circuit
        station = node._ports[user_port].station
        self.endpoint = LapbEndpoint(
            node.sim, node.callsign,
            send_frame=station.send_frame_object,
            t1=5 * SECOND,
            tracer=node.tracer,
        )
        self.endpoint.on_connect = self._lapb_connect
        self.endpoint.on_data = self._lapb_data
        self.endpoint.on_disconnect = self._lapb_disconnect
        node.on_user_frame = self._user_frame
        self._sessions: Dict[int, _Session] = {}
        #: outgoing LAPB bridges: conn -> (owning session, pipe)
        self._outgoing: Dict[int, tuple] = {}
        self.sessions_started = 0

    # ------------------------------------------------------------------
    # alias resolution
    # ------------------------------------------------------------------

    def resolve_alias(self, text: str) -> Optional[AX25Address]:
        """Resolve a node alias to its callsign; None if unknown."""
        wanted = text.upper()
        for route in self.node.routes.values():
            if route.alias.upper() == wanted:
                return route.destination
        return None

    # ------------------------------------------------------------------
    # AX.25 side (terminal users and final-hop bridges)
    # ------------------------------------------------------------------

    def _user_frame(self, frame: AX25Frame) -> None:
        if frame.frame_type is FrameType.UI:
            return
        if frame.destination.matches(self.node.callsign):
            self.endpoint.handle_frame(frame)

    def _lapb_connect(self, conn: LapbConnection, initiated: bool) -> None:
        if initiated:
            # an outgoing final-hop bridge came up
            entry = self._outgoing.get(id(conn))
            if entry is not None:
                session, pipe = entry
                session.attach_local_bridge(pipe)
            return
        session = _Session(self, _LapbPipe(conn))
        self._sessions[id(conn)] = session
        self.sessions_started += 1

    def _lapb_data(self, conn: LapbConnection, data: bytes, _pid: int) -> None:
        session = self._sessions.get(id(conn))
        if session is not None:
            session.data(data)
            return
        entry = self._outgoing.get(id(conn))
        if entry is not None:
            entry[0].bridge_data(data)

    def _lapb_disconnect(self, conn: LapbConnection, reason: str) -> None:
        session = self._sessions.pop(id(conn), None)
        if session is not None:
            session.closed()
            return
        entry = self._outgoing.pop(id(conn), None)
        if entry is not None:
            entry[0].bridge_closed(reason or "disconnected")

    def register_outgoing(self, conn: LapbConnection, session: _Session,
                          pipe: _Pipe) -> None:
        """Track an outgoing final-hop link for a session."""
        self._outgoing[id(conn)] = (session, pipe)

    # ------------------------------------------------------------------
    # circuit side (sessions arriving from other nodes)
    # ------------------------------------------------------------------

    def _incoming_circuit(self, circuit: Circuit) -> bool:
        session = _Session(self, _CircuitPipe(circuit))
        self._sessions[id(circuit)] = session
        self.sessions_started += 1
        circuit.on_data = session.data
        circuit.on_close = partial(self._circuit_close_cb, circuit)
        return True

    def _circuit_close_cb(self, circuit: Circuit, _reason: str) -> None:
        self._circuit_closed(circuit)

    def _circuit_closed(self, circuit: Circuit) -> None:
        session = self._sessions.pop(id(circuit), None)
        if session is not None:
            session.closed()
