"""The packet radio pseudo-device driver.

This is the code the paper is about.  "In adding packet radio support
to the Ultrix kernel, a pseudo-device driver for the packet radio
controller was implemented. ... The most difficult routine to write was
one which handled incoming packets from the TNC.  When a packet is
received by the TNC, the TNC sends the packet as a stream of bytes to
the tty line.  For each character in the packet, the tty driver calls
the packet radio interrupt handler to process the character."

The driver below follows that structure byte for byte:

* it hooks the tty line discipline and receives **one character per
  interrupt**;
* escaped KISS frame-end characters are decoded **on the fly** (or, for
  ablation A1, buffered raw and post-processed when the final FEND
  arrives -- ``reassembly="buffered"``);
* when the final frame end is read it checks the AX.25 destination
  callsign ("either its own, or the broadcast address") and the PID;
* IP packets go onto the stack's IP input queue via the soft interrupt;
  ARP packets go to the driver's own AX.25 ARP routines ("a separate
  routine that deals specifically with AX.25 addresses");
* non-IP packets are offered to a pluggable handler so a user program
  can run AX.25 level-2 services on top (§2.4) -- by default they land
  on a tty-style input queue exactly as the paper proposes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.ax25.address import AddressError, AX25Address, AX25Path, is_broadcast
from repro.ax25.defs import PID_ARPA_ARP, PID_ARPA_IP
from repro.ax25.frames import AX25Frame, FrameError
from repro.inet.arp import ArpEntry, ArpService, HRD_AX25
from repro.inet.ip import IPv4Address, PROTO_ICMP
from repro.kiss import commands
from repro.kiss.framing import FEND, KissDeframer, frame as kiss_frame
from repro.netif.ifnet import InterfaceFlags, NetworkInterface
from repro.serialio.tty import Tty
from repro.sim.clock import SECOND
from repro.sim.engine import Event, Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer

#: Default IP MTU over AX.25 (KA9Q convention: 256-byte paclen).
AX25_MTU = 256

#: Output priorities for the graceful-degradation path: control traffic
#: (ARP, ICMP) keeps flowing under queue pressure; bulk IP is shed first.
PRIO_CONTROL = 0
PRIO_BULK = 1


class PacketRadioInterface(NetworkInterface):
    """pr0: the AX.25/KISS pseudo-device driver (struct if_net instance)."""

    def __init__(
        self,
        sim: Simulator,
        tty: Tty,
        callsign: "AX25Address | str",
        name: str = "pr0",
        mtu: int = AX25_MTU,
        default_path: AX25Path = AX25Path(),
        reassembly: str = "per_char",
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(sim, name, mtu, flags=InterfaceFlags.UP | InterfaceFlags.BROADCAST)
        if reassembly not in ("per_char", "buffered"):
            raise ValueError(f"unknown reassembly mode {reassembly!r}")
        self.tty = tty
        self.callsign = (
            callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
        )
        self.default_path = default_path
        self.reassembly = reassembly
        self.tracer = tracer

        #: Handler for non-IP frames (the §2.4 application-gateway hook):
        #: ``f(frame)``.  When unset, the *encoded* frame is appended to
        #: :attr:`non_ip_queue` for a user program to read.
        self.non_ip_handler: Optional[Callable[[AX25Frame], None]] = None
        self.non_ip_queue: List[AX25Frame] = []
        self.non_ip_queue_limit = 32

        self.arp = ArpService(
            sim,
            hardware_type=HRD_AX25,
            my_hw=self.callsign.encode(last=True),
            my_ip_getter=self._my_ip,
            send_arp=self._send_arp,
            send_resolved=self._send_resolved,
            name=f"{name}.arp",
            # Radio pacing: a full request/reply round trip takes seconds
            # at 1200 bps, so retry far more patiently than Ethernet ARP.
            retry_interval=15 * SECOND,
        )

        # ARP queue-overflow and resolution-timeout drops are span
        # terminals: report them to any attached flight recorder.
        self.arp.on_drop = self._arp_obs_drop

        self._deframer = KissDeframer(on_frame=self._kiss_record)
        self._raw_buffer = bytearray()   # used by the "buffered" ablation mode
        #: Cap on the raw reassembly buffer: a fully escaped max-size
        #: frame plus the type byte.  Without this, a lost FEND during
        #: line noise grows the buffer without bound.
        self.raw_buffer_limit = 2 * self._deframer.max_frame + 2
        self._raw_discarding = False
        tty.hook_interrupt(self._rx_char_interrupt)
        tty.hook_burst(self._rx_burst)

        #: When set, bulk (non-ARP/ICMP) output is shed once the serial
        #: backlog toward the TNC exceeds this many bytes.  None = off.
        self.shed_threshold_bytes: Optional[int] = None
        #: Installed by :meth:`start_watchdog`.
        self.watchdog: Optional["TncWatchdog"] = None

        #: Control frames (ARP/ICMP) shed by the backlog guard.  The shed
        #: path is gated on ``priority != PRIO_CONTROL`` so this must stay
        #: zero in every reachable state; reprocheck asserts exactly that.
        self.sheds_control = 0

        # driver statistics (imitating if_data plus driver-specific ones)
        self.rx_char_interrupts = 0
        self.processing_ops = 0          # unit work items (ablation A1 metric)
        self.frames_from_tnc = 0
        self.frames_not_for_us = 0       # promiscuous TNC overhead (E3 metric)
        self.frames_bad = 0
        self.frames_ip_in = 0
        self.frames_arp_in = 0
        self.frames_non_ip = 0
        self.non_ip_drops = 0
        self.frames_to_tnc = 0
        self.raw_overflow_drops = 0      # buffered-mode reassembly cap hits

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _obs(self):
        """The attached flight recorder, if any (see repro.obs.spans)."""
        tracer = self.tracer
        return tracer.flight if tracer is not None else None

    def _my_ip(self):
        """ARP's view of our address (re-read on every use: ifconfig moves it)."""
        return self.address

    def _arp_obs_drop(self, packet: bytes, reason: str) -> None:
        recorder = self._obs()
        if recorder is not None:
            recorder.drop(packet, "driver.arp", str(self.callsign), reason)

    # ------------------------------------------------------------------
    # receive path: per-character interrupt handling
    # ------------------------------------------------------------------

    def _rx_char_interrupt(self, byte: int) -> None:
        """Called by the tty driver once per received character."""
        self.rx_char_interrupts += 1
        if self.reassembly == "per_char":
            # On-the-fly processing: unescape as each character arrives.
            self.processing_ops += 1
            self._deframer.push_byte(byte)
            return
        # Ablation mode: stash raw bytes, decode the whole packet at the
        # final frame end.  Costs a second pass over every byte.
        self.processing_ops += 1
        if self._raw_discarding:
            if byte == FEND:
                self._raw_discarding = False
            return
        self._raw_buffer.append(byte)
        if byte == FEND and len(self._raw_buffer) > 1:
            buffered = bytes(self._raw_buffer)
            self._raw_buffer.clear()
            self.processing_ops += len(buffered)
            self._deframer.push(buffered)
        elif byte == FEND:
            self._raw_buffer.clear()
        elif len(self._raw_buffer) > self.raw_buffer_limit:
            # A lost FEND must not grow the buffer without bound: dump
            # the partial frame and resynchronise at the next FEND.
            self.raw_overflow_drops += 1
            if self.tracer is not None:
                self.tracer.log("driver.drop", str(self.callsign),
                                "raw buffer overflow; resync at next FEND")
            self._raw_buffer.clear()
            self._raw_discarding = True

    def _rx_burst(self, data: bytes) -> None:
        """Frame-fidelity receive: one event delivers a whole write.

        Counter-for-counter identical to ``len(data)`` calls of
        :meth:`_rx_char_interrupt`; the per-char reassembly mode feeds
        the vectorised deframer and the buffered ablation mode keeps its
        exact per-byte accounting by looping.
        """
        if self.reassembly != "per_char":
            for byte in data:
                self._rx_char_interrupt(byte)
            return
        self.rx_char_interrupts += len(data)
        self.processing_ops += len(data)
        self._deframer.push(data)

    def _kiss_record(self, type_byte: int, payload: bytes) -> None:
        command, _port = commands.split_type_byte(type_byte)
        if command != commands.CMD_DATA:
            return  # a KISS TNC never sends command records up
        self.frames_from_tnc += 1
        self._frame_input(payload)

    def _frame_input(self, raw: bytes) -> None:
        """Header checks + protocol dispatch (the paper's §2.2 list)."""
        try:
            frame = AX25Frame.decode(raw)
        except FrameError:
            self.frames_bad += 1
            self.ierrors += 1
            # No recorder terminal: an undecodable frame has no parseable
            # IP payload to correlate a span with.  The tracer is the
            # observability channel for pre-span losses (CONS001).
            if self.tracer is not None:
                self.tracer.log("driver.drop", str(self.callsign),
                                "undecodable AX.25 frame")
            return
        # "It verifies that the recipient's amateur radio callsign (which
        # is used as a link address) is either its own, or the broadcast
        # address."  A frame still being digipeated is not ours either.
        if not frame.path.fully_repeated:
            self.frames_not_for_us += 1
            return
        if not (frame.destination.matches(self.callsign) or is_broadcast(frame.destination)):
            self.frames_not_for_us += 1
            return
        # "It also checks the protocol ID field."
        if frame.pid == PID_ARPA_IP:
            self.frames_ip_in += 1
            if self.tracer is not None:
                self.tracer.log("driver.ip_in", str(self.callsign), str(frame))
            recorder = self._obs()
            if recorder is not None:
                recorder.enter(frame.info, "driver.rx", str(self.callsign))
            self.deliver_input(frame.info, "ip")
        elif frame.pid == PID_ARPA_ARP:
            self.frames_arp_in += 1
            self.ipackets += 1
            # Learn the return digipeater path along with the mapping.
            self.arp.input(frame.info, link_hint=frame.path.reversed())
        else:
            # "Packets that are received from the TNC that are not of type
            # IP can be placed on the input queue for the appropriate tty
            # line." (§2.4)
            self.frames_non_ip += 1
            if self.non_ip_handler is not None:
                self.non_ip_handler(frame)
            elif len(self.non_ip_queue) < self.non_ip_queue_limit:
                self.non_ip_queue.append(frame)
            else:
                self.non_ip_drops += 1
                if self.tracer is not None:
                    self.tracer.log("driver.drop", str(self.callsign),
                                    "non-IP input queue full")

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def if_output(self, packet: bytes, next_hop: IPv4Address,
                  protocol: str = "ip") -> bool:
        """Transmit one layer-3 packet toward the next hop."""
        if not self.is_up:
            self.oerrors += 1
            recorder = self._obs()
            if recorder is not None:
                recorder.drop(packet, "driver.tx", str(self.callsign),
                              "iface_down")
            return False
        self.count_output(packet)
        if next_hop.is_broadcast:
            self._transmit_ui(
                AX25Address("QST"), PID_ARPA_IP, packet, self.default_path,
                priority=self._ip_priority(packet),
            )
            return True
        self.arp.resolve_and_send(next_hop, packet)
        return True

    def send_ax25_frame(self, frame: AX25Frame) -> None:
        """Send a pre-built AX.25 frame (used by the §2.4 app gateway)."""
        self._write_kiss(frame.encode())

    def _send_resolved(self, packet: bytes, entry: ArpEntry) -> None:
        # Line noise can corrupt an ARP sender_hw before it is learned;
        # a garbage cache entry must drop the datagram, not panic.
        try:
            destination, _last, _bit = AX25Address.decode(entry.hw_address)
        except AddressError:
            self.tracer.log("driver.drop", str(self.callsign),
                            "undecodable ARP hardware address")
            recorder = self._obs()
            if recorder is not None:
                recorder.drop(packet, "driver.tx", str(self.callsign),
                              "bad_header")
            return
        path = entry.link_hint if isinstance(entry.link_hint, AX25Path) else self.default_path
        self._transmit_ui(destination.base, PID_ARPA_IP, packet, path,
                          priority=self._ip_priority(packet))

    def _send_arp(self, packet: bytes, broadcast: bool,
                  entry: Optional[ArpEntry]) -> None:
        if broadcast or entry is None:
            self._transmit_ui(AX25Address("QST"), PID_ARPA_ARP, packet,
                              self.default_path, priority=PRIO_CONTROL)
            return
        try:
            destination, _last, _bit = AX25Address.decode(entry.hw_address)
        except AddressError:
            self.tracer.log("driver.drop", str(self.callsign),
                            "undecodable ARP hardware address")
            return
        path = entry.link_hint if isinstance(entry.link_hint, AX25Path) else self.default_path
        self._transmit_ui(destination.base, PID_ARPA_ARP, packet, path,
                          priority=PRIO_CONTROL)

    @staticmethod
    def _ip_priority(packet: bytes) -> int:
        """ICMP is control traffic; everything else is sheddable bulk."""
        if len(packet) >= 20 and packet[9] == PROTO_ICMP:
            return PRIO_CONTROL
        return PRIO_BULK

    def _transmit_ui(self, destination: AX25Address, pid: int, payload: bytes,
                     path: AX25Path, priority: int = PRIO_BULK) -> None:
        if (self.shed_threshold_bytes is not None
                and priority != PRIO_CONTROL
                and self.tty.tx_backlog_bytes > self.shed_threshold_bytes):
            # Graceful degradation: the serial line is the §4.1 choke
            # point; shed bulk output rather than queueing unboundedly,
            # but keep ARP/ICMP flowing so the link stays diagnosable.
            self.count_shed()
            if priority == PRIO_CONTROL:
                self.sheds_control += 1  # reprolint: disable=CONS001 -- shed site below emits driver.shed + recorder terminal
            if self.tracer is not None:
                self.tracer.log("driver.shed", str(self.callsign),
                                "bulk output shed under backlog",
                                backlog=self.tty.tx_backlog_bytes)
            recorder = self._obs()
            if recorder is not None and pid == PID_ARPA_IP:
                recorder.shed_packet(payload, "driver.tx", str(self.callsign),
                                     "serial_backlog")
            return
        frame = AX25Frame.ui(destination, self.callsign, pid, payload, path)
        if self.tracer is not None:
            self.tracer.log("driver.tx", str(self.callsign), str(frame))
        recorder = self._obs()
        if recorder is not None and pid == PID_ARPA_IP:
            recorder.enter(payload, "driver.tx", str(self.callsign))
        self._write_kiss(frame.encode())

    def _write_kiss(self, frame_bytes: bytes) -> None:
        record = kiss_frame(commands.type_byte(commands.CMD_DATA), frame_bytes)
        self.frames_to_tnc += 1
        self.tty.write(record)

    # ------------------------------------------------------------------
    # parameter control (if_ioctl extensions)
    # ------------------------------------------------------------------

    def if_ioctl(self, request: str, value: Any = None) -> Any:
        """KISS parameter requests ride the serial line as command records."""
        kiss_commands = {
            "txdelay": commands.CMD_TXDELAY,
            "persist": commands.CMD_PERSIST,
            "slottime": commands.CMD_SLOTTIME,
            "txtail": commands.CMD_TXTAIL,
            "fullduplex": commands.CMD_FULLDUP,
        }
        command = kiss_commands.get(request)
        if command is None:
            return super().if_ioctl(request, value)
        record = kiss_frame(commands.type_byte(command), bytes((int(value) & 0xFF,)))
        self.tty.write(record)
        return None

    @property
    def output_backlog(self) -> int:
        """Bytes still serialising toward the TNC (the §4.1 queue)."""
        return self.tty.tx_backlog_bytes

    def add_arp_entry(self, ip: "IPv4Address | str",
                      callsign: "AX25Address | str",
                      path: AX25Path = AX25Path()) -> None:
        """Static AX.25 ARP entry, optionally with a digipeater path."""
        callsign = (
            callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
        )
        self.arp.add_static(ip, callsign.encode(last=True), link_hint=path)

    # ------------------------------------------------------------------
    # TNC recovery
    # ------------------------------------------------------------------

    def reset_tnc(self) -> None:
        """Send a KISS return record: reboot a wedged TNC out of band.

        The record rides the ordinary serial line -- the wedged firmware's
        RX interrupt still runs, so the reset vector is reachable even
        when the main loop is hung (see :meth:`repro.tnc.kiss_tnc.KissTnc.wedge`).
        """
        record = kiss_frame(commands.type_byte(commands.CMD_RETURN), b"")
        self.tty.write(record)
        if self.tracer is not None:
            self.tracer.log("driver.reset_tnc", str(self.callsign),
                            "KISS return sent to TNC")

    def start_watchdog(self, streams: RandomStreams, **kwargs: Any) -> "TncWatchdog":
        """Attach and start a :class:`TncWatchdog` on this interface."""
        self.watchdog = TncWatchdog(self, streams, **kwargs)
        self.watchdog.start()
        return self.watchdog


class TncWatchdog:
    """Detects a silent TNC and kicks it with a KISS reset.

    Detection rule: no receive character interrupt for
    ``silence_timeout``.  A promiscuous KISS TNC on a shared packet
    channel delivers *something* up the serial line every few seconds --
    other people's frames included -- so sustained total silence means
    the firmware main loop is hung.  (A wedged TNC also stops the
    driver's own TX from eliciting traffic, so TX progress cannot be
    required for suspicion; on a genuinely idle channel a spurious reset
    merely costs the TNC a reboot.)

    Recovery is a KISS return record (:meth:`PacketRadioInterface.reset_tnc`)
    followed by capped exponential backoff with seeded jitter before the
    next attempt.  Worst-case recovery time from the moment of the wedge
    is bounded by::

        silence_timeout + 2 * check_interval + reboot_delay + check_interval

    (detection latency + check-cycle quantisation + the TNC firmware
    restart + one check to observe resumed traffic), about 38 s of
    simulated time at the defaults -- and under 60 s even if the first
    reset record is itself corrupted by line noise and a backoff cycle
    is consumed.  The jitter stream is ``watchdog/<ifname>``, so
    enabling the watchdog perturbs no other random stream.
    """

    def __init__(
        self,
        driver: PacketRadioInterface,
        streams: RandomStreams,
        check_interval: int = 5 * SECOND,
        silence_timeout: int = 20 * SECOND,
        backoff_base: int = 2 * SECOND,
        backoff_cap: int = 30 * SECOND,
    ) -> None:
        self.driver = driver
        self.sim = driver.sim
        self.check_interval = check_interval
        self.silence_timeout = silence_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = streams.stream(f"watchdog/{driver.name}")
        self._running = False
        self._event: Optional[Event] = None

        # progress tracking
        self._last_rx = driver.rx_char_interrupts
        self._last_rx_time = self.sim.now
        self._suspected_at: Optional[int] = None
        self._attempt = 0
        self._next_reset_at = 0

        # counters (surfaced in scenario metrics)
        self.resets_issued = 0
        self.recoveries = 0
        self.last_recovery_us = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_check()

    def stop(self) -> None:
        self._running = False

    def _schedule_check(self) -> None:
        self._event = self.sim.schedule(
            self.check_interval, self._check,
            label=f"watchdog {self.driver.name}")

    def _check(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        rx = self.driver.rx_char_interrupts
        if rx != self._last_rx:
            # Receive path made progress: healthy (or just recovered).
            if self._suspected_at is not None:
                self.recoveries += 1
                self.last_recovery_us = now - self._suspected_at
                self._suspected_at = None
                if self.driver.tracer is not None:
                    self.driver.tracer.log(
                        "driver.watchdog.recovered", self.driver.name,
                        "TNC responding again",
                        after_us=self.last_recovery_us)
                recorder = self.driver._obs()
                if recorder is not None:
                    recorder.instruments.histogram(
                        "watchdog_recovery_us").record(self.last_recovery_us)
            self._attempt = 0
            self._next_reset_at = 0
            self._last_rx = rx
            self._last_rx_time = now
        else:
            silent_for = now - self._last_rx_time
            if silent_for >= self.silence_timeout:
                if self._suspected_at is None:
                    self._suspected_at = now
                if now >= self._next_reset_at:
                    self.resets_issued += 1
                    if self.driver.tracer is not None:
                        self.driver.tracer.log(
                            "driver.watchdog.reset", self.driver.name,
                            "TNC silent, issuing KISS reset",
                            silent_us=silent_for,
                            attempt=self._attempt + 1)
                    self.driver.reset_tnc()
                    backoff = min(self.backoff_cap,
                                  self.backoff_base << self._attempt)
                    jitter = int(self._rng.random() * self.backoff_base)
                    self._attempt += 1
                    self._next_reset_at = now + backoff + jitter
        self._schedule_check()
