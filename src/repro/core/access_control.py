"""The §4.3 access-control table.

"One way to solve this problem is to maintain a table of authorized
addresses on the non-amateur side of the gateway.  Associated with each
of these addresses is a list of hosts on the amateur side of the
gateway with which that host can communicate.  Initially the table
starts off empty.  Whenever a packet is received on the amateur side
destined for a non-amateur host, an entry is made in the table,
enabling the non-amateur host to send packets in the other direction.
After a certain period of time, these entries are removed if packets
have not been received from the amateur side of the gateway."

Plus the ICMP augmentation: a revoke message (the control operator's
kill switch) and an authorise message with a chosen time-to-live, which
must carry a valid control-operator callsign and password when it
arrives from the non-amateur side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.inet import icmp as icmp_mod
from repro.inet.ip import IPv4Address, IPv4Datagram
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netif.ifnet import NetworkInterface


@dataclass
class AccessEntry:
    """Permission for one (outside host, amateur host) pair."""

    outside: IPv4Address
    amateur: IPv4Address
    expires_at: int
    created_at: int
    refreshes: int = 0


class AccessControlTable:
    """Auto-populated authorisation table for a gateway.

    Install on a gateway stack via :meth:`filter` (assigned to
    ``stack.forward_filter``) and :meth:`handle_icmp` (appended to
    ``stack.icmp_listeners``).  The table needs to know which interface
    faces the amateur subnet; everything else is "outside".
    """

    DEFAULT_TTL = 300 * SECOND

    def __init__(self, sim: Simulator, amateur_iface: "NetworkInterface",
                 entry_ttl: int = DEFAULT_TTL,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.amateur_iface = amateur_iface
        self.entry_ttl = entry_ttl
        self.tracer = tracer
        #: (outside.value, amateur.value) -> entry
        self._entries: Dict[Tuple[int, int], AccessEntry] = {}
        #: control operators allowed to authorise from the outside:
        #: callsign -> password
        self.operators: Dict[str, str] = {}

        self.allowed_out = 0          # amateur -> outside forwards
        self.allowed_in = 0           # outside -> amateur forwards
        self.blocked_in = 0           # outside -> amateur drops
        self.entries_created = 0
        self.entries_expired = 0
        self.entries_revoked = 0
        self.auth_failures = 0

    # ------------------------------------------------------------------
    # forwarding filter
    # ------------------------------------------------------------------

    def filter(self, datagram: IPv4Datagram, in_iface: "NetworkInterface") -> bool:
        """The gateway's forward veto (plug into ``stack.forward_filter``)."""
        if in_iface is self.amateur_iface:
            # Amateur-initiated traffic always passes and (re)arms the
            # table for the reverse direction.
            self._authorize(datagram.destination, datagram.source,
                            self.entry_ttl, origin="traffic")
            self.allowed_out += 1
            return True
        entry = self._live_entry(datagram.source, datagram.destination)
        if entry is None:
            self.blocked_in += 1
            if self.tracer is not None:
                self.tracer.log("ac.block", "gateway",
                                f"{datagram.source}->{datagram.destination}")
            return False
        self.allowed_in += 1
        return True

    # ------------------------------------------------------------------
    # table maintenance
    # ------------------------------------------------------------------

    def _authorize(self, outside: IPv4Address, amateur: IPv4Address,
                   ttl: int, origin: str) -> AccessEntry:
        key = (outside.value, amateur.value)
        entry = self._entries.get(key)
        now = self.sim.now
        if entry is None:
            entry = AccessEntry(outside, amateur, expires_at=now + ttl,
                                created_at=now)
            self._entries[key] = entry
            self.entries_created += 1
            if self.tracer is not None:
                self.tracer.log("ac.add", "gateway",
                                f"{outside}<->{amateur}", origin=origin)
        else:
            entry.expires_at = max(entry.expires_at, now + ttl)
            entry.refreshes += 1
        return entry

    def _live_entry(self, outside: IPv4Address,
                    amateur: IPv4Address) -> Optional[AccessEntry]:
        key = (outside.value, amateur.value)
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires_at <= self.sim.now:
            del self._entries[key]
            self.entries_expired += 1
            return None
        return entry

    def revoke(self, outside: IPv4Address, amateur: IPv4Address) -> bool:
        """Remove an authorisation entry."""
        key = (outside.value, amateur.value)
        if key in self._entries:
            del self._entries[key]
            self.entries_revoked += 1
            if self.tracer is not None:
                self.tracer.log("ac.revoke", "gateway", f"{outside}<->{amateur}")
            return True
        return False

    def expire_stale(self) -> int:
        """Sweep expired entries; returns how many were removed."""
        now = self.sim.now
        stale = [key for key, entry in self._entries.items()
                 if entry.expires_at <= now]
        for key in stale:
            del self._entries[key]
        self.entries_expired += len(stale)
        return len(stale)

    def live_entries(self) -> int:
        """Number of unexpired entries."""
        self.expire_stale()
        return len(self._entries)

    def add_operator(self, callsign: str, password: str) -> None:
        """Register a control operator for outside-originated requests."""
        self.operators[callsign.upper()] = password

    # ------------------------------------------------------------------
    # ICMP control messages
    # ------------------------------------------------------------------

    def handle_icmp(self, message: icmp_mod.IcmpMessage,
                    source: IPv4Address) -> None:
        """Process the §4.3 extension messages (plug into icmp_listeners)."""
        if message.icmp_type != icmp_mod.ICMP_ACCESS_CONTROL:
            return
        try:
            request = icmp_mod.AccessControlRequest.decode(message.body)
        except icmp_mod.IcmpError:
            return
        from_amateur = self._is_amateur_address(source)
        if not from_amateur and not self._operator_ok(request):
            self.auth_failures += 1
            if self.tracer is not None:
                self.tracer.log("ac.authfail", "gateway",
                                f"{source} code={message.code}")
            return
        if message.code == icmp_mod.AC_AUTHORIZE:
            ttl = request.ttl_seconds * SECOND if request.ttl_seconds else self.entry_ttl
            self._authorize(request.outside, request.amateur, ttl, origin="icmp")
        elif message.code == icmp_mod.AC_REVOKE:
            self.revoke(request.outside, request.amateur)

    def _operator_ok(self, request: icmp_mod.AccessControlRequest) -> bool:
        expected = self.operators.get(request.callsign.upper())
        return expected is not None and expected == request.password

    def _is_amateur_address(self, address: IPv4Address) -> bool:
        iface_addr = self.amateur_iface.address
        if iface_addr is None:
            return False
        return address.same_network(iface_addr)
