"""The paper's contribution: packet radio in the (simulated) Ultrix kernel.

* :mod:`~repro.core.driver` -- the pseudo-device driver: per-character
  tty interrupt handling, on-the-fly KISS unescaping, AX.25 callsign
  and PID checks, hand-off to the IP input queue.
* :mod:`~repro.core.access_control` -- the §4.3 gateway authorisation
  table with TTL expiry and ICMP control messages.
* :mod:`~repro.core.hosts` -- host builders: the MicroVAX gateway, the
  isolated PC running Karn-style TCP/IP, terminal stations.
* :mod:`~repro.core.topology` -- canonical testbeds (Figure 1, the
  §2.3 demo, the §4.2 two-coast Internet, digipeater chains).
"""

from repro.core.access_control import AccessControlTable
from repro.core.driver import PacketRadioInterface
from repro.core.hosts import GatewayHost, PcHost, TerminalStation, make_radio_host
from repro.core.topology import (
    Figure1Testbed,
    GatewayTestbed,
    TwoCoastInternet,
    build_figure1_testbed,
    build_gateway_testbed,
    build_two_coast_internet,
)

__all__ = [
    "AccessControlTable",
    "Figure1Testbed",
    "GatewayHost",
    "GatewayTestbed",
    "PacketRadioInterface",
    "PcHost",
    "TerminalStation",
    "TwoCoastInternet",
    "build_figure1_testbed",
    "build_gateway_testbed",
    "build_two_coast_internet",
    "make_radio_host",
]
