"""Canonical testbeds from the paper.

* :func:`build_figure1_testbed` -- Figure 1: Radio--TNC--RS-232--Host,
  with a peer station on the channel to talk to.
* :func:`build_gateway_testbed` -- the §2.3 demo: the MicroVAX gateway
  on the department Ethernet, an Ethernet host, and an isolated PC on
  the radio channel ("connected to only a power outlet and a radio").
* :func:`build_two_coast_internet` -- the §4.2 problem: one class-A
  route for AMPRnet forces east-coast traffic through the west-coast
  gateway; optional regional host routes / ICMP redirects fix it.
* :func:`build_digipeater_chain` -- a linear chain of digipeaters for
  ablation A2 (throughput vs hop count on one frequency).
* :func:`synthesize_stations` -- grow any radio channel from the
  paper's hand-placed hosts to an N-station population (used by the
  workload layer to scale scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ax25.address import AX25Path
from repro.core.hosts import (
    GatewayHost,
    PcHost,
    make_ethernet_host,
    make_gateway,
    make_radio_host,
)
from repro.ethernet.lan import EthernetLan
from repro.inet.netstack import NetStack
from repro.radio.channel import RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer
from repro.tnc.digipeater import Digipeater


@dataclass
class Figure1Testbed:
    """Figure 1 plus one peer station."""

    sim: Simulator
    streams: RandomStreams
    tracer: Tracer
    channel: RadioChannel
    host: PcHost          # the MicroVAX end of Figure 1
    peer: PcHost          # another station on the frequency


def build_figure1_testbed(
    seed: int = 0,
    bit_rate: int = 1200,
    serial_baud: int = 9600,
    sim: Optional[Simulator] = None,
    fidelity: str = "per_char",
) -> Figure1Testbed:
    """One radio host and one peer on a shared channel.

    ``sim`` lets a caller supply the engine -- the SimSanitizer passes an
    :class:`~repro.sim.sanitizer.OrderShuffleSimulator` here so the same
    seeded build runs under a perturbed equal-time tie-break.
    ``fidelity`` selects the serial delivery granularity for every host
    (see :mod:`repro.serialio.line`).
    """
    sim = sim if sim is not None else Simulator()
    streams = RandomStreams(seed=seed)
    tracer = Tracer(sim)
    channel = RadioChannel(sim, streams, tracer=tracer)
    modem = ModemProfile(bit_rate=bit_rate)
    host = make_radio_host(
        sim, channel, "microvax", "N7AKR", "44.24.0.28",
        tracer=tracer, modem=modem, serial_baud=serial_baud,
        fidelity=fidelity,
    )
    peer = make_radio_host(
        sim, channel, "pc1", "KB7DZ", "44.24.0.5",
        tracer=tracer, modem=modem, serial_baud=serial_baud,
        fidelity=fidelity,
    )
    return Figure1Testbed(sim, streams, tracer, channel, host, peer)


@dataclass
class GatewayTestbed:
    """The §2.3 demonstration network."""

    sim: Simulator
    streams: RandomStreams
    tracer: Tracer
    lan: EthernetLan
    channel: RadioChannel
    gateway: GatewayHost
    ether_host: NetStack   # the system "that was on our Ethernet"
    pc: PcHost             # the isolated IBM PC

    GATEWAY_RADIO_IP = "44.24.0.28"   # the paper's actual address
    GATEWAY_ETHER_IP = "128.95.1.1"
    ETHER_HOST_IP = "128.95.1.2"
    PC_IP = "44.24.0.5"


def build_gateway_testbed(
    seed: int = 0,
    bit_rate: int = 1200,
    serial_baud: int = 9600,
    tnc_address_filter: bool = False,
    csma: Optional[CsmaParameters] = None,
    sim: Optional[Simulator] = None,
    fidelity: str = "per_char",
) -> GatewayTestbed:
    """Gateway + Ethernet host + isolated radio PC, routes configured.

    ``sim`` lets a caller supply the engine and ``fidelity`` the serial
    delivery granularity (see :func:`build_figure1_testbed`).
    """
    sim = sim if sim is not None else Simulator()
    streams = RandomStreams(seed=seed)
    tracer = Tracer(sim)
    lan = EthernetLan(sim, tracer=tracer)
    channel = RadioChannel(sim, streams, tracer=tracer)
    modem = ModemProfile(bit_rate=bit_rate)

    gateway = make_gateway(
        sim, lan, channel, "microvax", "NT7GW",
        ether_ip=GatewayTestbed.GATEWAY_ETHER_IP,
        radio_ip=GatewayTestbed.GATEWAY_RADIO_IP,
        mac_index=1, tracer=tracer, modem=modem,
        serial_baud=serial_baud, tnc_address_filter=tnc_address_filter,
        csma=csma, fidelity=fidelity,
    )
    ether_host = make_ethernet_host(
        sim, lan, "wally", GatewayTestbed.ETHER_HOST_IP, mac_index=2, tracer=tracer
    )
    # "The routing table of another system on our Ethernet was modified so
    # it knew that 44.24.0.28 was the address of a gateway to net 44."
    ether_host.routes.add_network_route(
        "44.0.0.0", ether_host.interfaces[-1],
        gateway=GatewayTestbed.GATEWAY_ETHER_IP,
    )
    pc = make_radio_host(
        sim, channel, "ibmpc", "KB7DZ", GatewayTestbed.PC_IP,
        tracer=tracer, modem=modem, serial_baud=serial_baud,
        tnc_address_filter=tnc_address_filter, csma=csma,
        fidelity=fidelity,
    )
    pc.stack.routes.set_default(
        pc.interface, GatewayTestbed.GATEWAY_RADIO_IP
    )
    return GatewayTestbed(sim, streams, tracer, lan, channel, gateway,
                          ether_host, pc)


@dataclass
class TwoCoastInternet:
    """The §4.2 routing problem in miniature.

    A backbone Ethernet carries an Internet host plus the west- and
    east-coast gateways.  Each gateway fronts its own radio subnet of
    net 44 (44.24/Seattle, 44.56/east coast).  The Internet host has the
    era's single classful route: all of net 44 via the *west* gateway.
    """

    sim: Simulator
    streams: RandomStreams
    tracer: Tracer
    backbone: EthernetLan
    west_channel: RadioChannel
    east_channel: RadioChannel
    internet_host: NetStack
    west_gateway: GatewayHost
    east_gateway: GatewayHost
    west_station: PcHost
    east_station: PcHost

    INTERNET_HOST_IP = "192.12.33.2"
    WEST_GW_BACKBONE_IP = "192.12.33.10"
    EAST_GW_BACKBONE_IP = "192.12.33.20"
    WEST_GW_RADIO_IP = "44.24.0.28"
    EAST_GW_RADIO_IP = "44.56.0.28"
    WEST_STATION_IP = "44.24.0.5"
    EAST_STATION_IP = "44.56.0.5"


def build_two_coast_internet(
    seed: int = 0,
    bit_rate: int = 1200,
    send_redirects: bool = False,
    regional_routes_at_host: bool = False,
) -> TwoCoastInternet:
    """Build the §4.2 topology.

    ``regional_routes_at_host`` models the fix the paper wishes for: the
    Internet host knows 44.56 destinations go east directly.
    ``send_redirects`` instead lets the west gateway correct the host on
    the fly ("something like this could be handled using ICMP").
    """
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    tracer = Tracer(sim)
    backbone = EthernetLan(sim, tracer=tracer)
    west_channel = RadioChannel(sim, streams, tracer=tracer, name="seattle-145.01")
    east_channel = RadioChannel(sim, streams, tracer=tracer, name="eastcoast-145.01")
    modem = ModemProfile(bit_rate=bit_rate)
    T = TwoCoastInternet

    west_gateway = make_gateway(
        sim, backbone, west_channel, "west-gw", "NT7GW",
        ether_ip=T.WEST_GW_BACKBONE_IP, radio_ip=T.WEST_GW_RADIO_IP,
        mac_index=10, tracer=tracer, modem=modem,
    )
    east_gateway = make_gateway(
        sim, backbone, east_channel, "east-gw", "WB2GW",
        ether_ip=T.EAST_GW_BACKBONE_IP, radio_ip=T.EAST_GW_RADIO_IP,
        mac_index=20, tracer=tracer, modem=modem,
    )
    internet_host = make_ethernet_host(
        sim, backbone, "internet-host", T.INTERNET_HOST_IP, mac_index=2,
        tracer=tracer,
    )

    # The single classful route of §4.2: everything in net 44 goes west.
    internet_host.routes.add_network_route(
        "44.0.0.0", internet_host.interfaces[-1], gateway=T.WEST_GW_BACKBONE_IP
    )
    if regional_routes_at_host:
        internet_host.routes.add_host_route(
            T.EAST_STATION_IP, internet_host.interfaces[-1],
            gateway=T.EAST_GW_BACKBONE_IP,
        )
        internet_host.routes.add_host_route(
            T.EAST_GW_RADIO_IP, internet_host.interfaces[-1],
            gateway=T.EAST_GW_BACKBONE_IP,
        )

    # Each gateway knows the other coast's subnet lives across the
    # backbone.  (Net 44 is directly attached at both, so these must be
    # host routes -- precisely the §4.2 pain.)
    for station_ip, other_gw in (
        (T.EAST_STATION_IP, T.EAST_GW_BACKBONE_IP),
        (T.EAST_GW_RADIO_IP, T.EAST_GW_BACKBONE_IP),
    ):
        west_gateway.stack.routes.add_host_route(
            station_ip, west_gateway.ether, gateway=other_gw
        )
    for station_ip, other_gw in (
        (T.WEST_STATION_IP, T.WEST_GW_BACKBONE_IP),
        (T.WEST_GW_RADIO_IP, T.WEST_GW_BACKBONE_IP),
    ):
        east_gateway.stack.routes.add_host_route(
            station_ip, east_gateway.ether, gateway=other_gw
        )
    west_gateway.stack.send_redirects = send_redirects
    east_gateway.stack.send_redirects = send_redirects

    west_station = make_radio_host(
        sim, west_channel, "w7abc", "W7ABC", T.WEST_STATION_IP,
        tracer=tracer, modem=modem,
    )
    west_station.stack.routes.set_default(west_station.interface, T.WEST_GW_RADIO_IP)
    east_station = make_radio_host(
        sim, east_channel, "k2xyz", "K2XYZ", T.EAST_STATION_IP,
        tracer=tracer, modem=modem,
    )
    east_station.stack.routes.set_default(east_station.interface, T.EAST_GW_RADIO_IP)

    return TwoCoastInternet(
        sim, streams, tracer, backbone, west_channel, east_channel,
        internet_host, west_gateway, east_gateway, west_station, east_station,
    )


def synthesize_stations(
    sim: Simulator,
    channel: RadioChannel,
    count: int,
    tracer: Optional[Tracer] = None,
    modem: Optional[ModemProfile] = None,
    serial_baud: int = 9600,
    csma: Optional[CsmaParameters] = None,
    default_gateway: Optional[str] = None,
    callsign_prefix: str = "WL",
    subnet: str = "44.24",
    start_index: int = 0,
    fidelity: str = "per_char",
) -> List[PcHost]:
    """Mass-produce IP-speaking radio stations on an existing channel.

    The canonical testbeds place the paper's two or three hand-named
    hosts; this grows the population to ``count`` additional stations
    with generated callsigns (``WL0``, ``WL1``, ...) and addresses from
    ``subnet``.3-octet space starting at ``.1.1`` (clear of the .0.x
    addresses the canonical testbeds use).  When ``default_gateway`` is
    given, every station routes off-subnet traffic through it -- the
    §2.3 "isolated PC" configuration, N times over.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    stations: List[PcHost] = []
    for offset in range(count):
        index = start_index + offset
        if index >= 200 * 250:
            raise ValueError("station index exhausts the subnet")
        callsign = f"{callsign_prefix}{index}"
        if len(callsign) > 6:
            raise ValueError(f"callsign {callsign!r} exceeds 6 characters")
        ip = f"{subnet}.{1 + index // 200}.{1 + index % 200}"
        host = make_radio_host(
            sim, channel, f"sta{index}", callsign, ip,
            tracer=tracer, modem=modem, serial_baud=serial_baud, csma=csma,
            fidelity=fidelity,
        )
        if default_gateway is not None:
            host.stack.routes.set_default(host.interface, default_gateway)
        stations.append(host)
    return stations


@dataclass
class DigipeaterChain:
    """A linear source-route chain: src -- d1 -- ... -- dn -- dst."""

    sim: Simulator
    streams: RandomStreams
    tracer: Tracer
    channel: RadioChannel
    source: PcHost
    destination: PcHost
    digipeaters: List[Digipeater]
    path: AX25Path


def build_digipeater_chain(
    hops: int,
    seed: int = 0,
    bit_rate: int = 1200,
) -> DigipeaterChain:
    """Build a chain where consecutive stations only hear each other.

    ``hops`` digipeaters sit between source and destination; the source
    route through all of them is pre-installed in the source's AX.25
    ARP entry for the destination.
    """
    if not 0 <= hops <= 8:
        raise ValueError("AX.25 allows 0..8 digipeaters")
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    tracer = Tracer(sim)
    channel = RadioChannel(sim, streams, tracer=tracer)
    modem = ModemProfile(bit_rate=bit_rate)

    source = make_radio_host(
        sim, channel, "src", "W7SRC", "44.24.0.2", tracer=tracer, modem=modem
    )
    destination = make_radio_host(
        sim, channel, "dst", "W7DST", "44.24.0.3", tracer=tracer, modem=modem
    )
    digipeaters = [
        Digipeater(sim, channel, f"WB7R-{index + 1}", modem=modem, tracer=tracer)
        for index in range(hops)
    ]
    # Propagation: linear chain only.
    names = (
        [str(source.callsign)]
        + [str(digi.callsign) for digi in digipeaters]
        + [str(destination.callsign)]
    )
    channel.use_explicit_links()
    for left, right in zip(names, names[1:]):
        channel.add_link(left, right)

    path = AX25Path.of(*(str(digi.callsign) for digi in digipeaters))
    source.interface.add_arp_entry("44.24.0.3", "W7DST", path)
    destination.interface.add_arp_entry("44.24.0.2", "W7SRC", path.reversed())
    return DigipeaterChain(
        sim, streams, tracer, channel, source, destination, digipeaters, path
    )
