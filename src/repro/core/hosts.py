"""Host builders: the kinds of stations the paper's network contains.

* :class:`GatewayHost` -- the MicroVAX: Ultrix stack, DEQNA on the
  Ethernet, KISS TNC on a DZ serial line, IP forwarding between them.
* :class:`PcHost` -- an isolated PC running Karn-style TCP/IP over a
  KISS TNC ("connected to only a power outlet and a radio").
* :class:`TerminalStation` -- a dumb terminal plugged into a stock ROM
  TNC; no IP at all, just AX.25 connected mode.
* :func:`make_ethernet_host` -- an ordinary Internet host on a LAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ax25.address import AX25Address, AX25Path
from repro.ax25.lapb import LinkTimerPolicy
from repro.core.access_control import AccessControlTable
from repro.core.driver import PacketRadioInterface
from repro.ethernet.deqna import Deqna
from repro.ethernet.frames import MacAddress
from repro.ethernet.lan import EthernetLan
from repro.inet.ether_if import EthernetInterface
from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.radio.channel import RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.serialio.line import SerialLine
from repro.serialio.tty import Tty
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.tnc.kiss_tnc import KissTnc
from repro.tnc.rom_tnc import RomTnc

#: The DZ line speed between host and TNC in the era's setups.
DEFAULT_SERIAL_BAUD = 9600


@dataclass
class RadioAttachment:
    """The serial-line + TNC + driver bundle shared by radio-capable hosts."""

    serial: SerialLine
    tty: Tty
    tnc: KissTnc
    interface: PacketRadioInterface


def attach_kiss_radio(
    sim: Simulator,
    stack: NetStack,
    channel: RadioChannel,
    callsign: "AX25Address | str",
    ip: "IPv4Address | str",
    serial_baud: int = DEFAULT_SERIAL_BAUD,
    modem: Optional[ModemProfile] = None,
    csma: Optional[CsmaParameters] = None,
    tnc_address_filter: bool = False,
    default_path: AX25Path = AX25Path(),
    tracer: Optional[Tracer] = None,
    ifname: str = "pr0",
    fidelity: str = "per_char",
) -> RadioAttachment:
    """Wire a KISS TNC + packet radio driver onto an existing stack.

    This is Figure 1 in code: Radio -- TNC -- RS-232 line -- DZ -- Host.

    ``fidelity`` selects the serial line's delivery granularity
    (``"per_char"`` or ``"frame"``; see :mod:`repro.serialio.line`).
    """
    callsign = (
        callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
    )
    serial = SerialLine(sim, baud=serial_baud, name=f"{stack.hostname}.dz0",
                        fidelity=fidelity)
    tty = Tty(serial.a, name=f"{stack.hostname}.tty0")
    tnc = KissTnc(
        sim,
        channel,
        serial.b,
        name=str(callsign),
        callsign=callsign,
        modem=modem,
        csma=csma,
        address_filter=tnc_address_filter,
        tracer=tracer,
    )
    interface = PacketRadioInterface(
        sim, tty, callsign, name=ifname, default_path=default_path, tracer=tracer
    )
    stack.attach_interface(interface, ip)
    return RadioAttachment(serial=serial, tty=tty, tnc=tnc, interface=interface)


@dataclass
class PcHost:
    """An IBM PC running the KA9Q-style TCP/IP package over packet radio."""

    stack: NetStack
    radio: RadioAttachment

    @property
    def interface(self) -> PacketRadioInterface:
        """The network interface of this host."""
        return self.radio.interface

    @property
    def callsign(self) -> AX25Address:
        """This station's AX.25 callsign."""
        return self.radio.interface.callsign


def make_radio_host(
    sim: Simulator,
    channel: RadioChannel,
    hostname: str,
    callsign: "AX25Address | str",
    ip: "IPv4Address | str",
    tracer: Optional[Tracer] = None,
    **radio_kwargs,
) -> PcHost:
    """Build an IP-speaking radio-only host (the isolated PC of §2.3)."""
    stack = NetStack(sim, hostname, tracer=tracer)
    radio = attach_kiss_radio(
        sim, stack, channel, callsign, ip, tracer=tracer, **radio_kwargs
    )
    return PcHost(stack=stack, radio=radio)


@dataclass
class GatewayHost:
    """The MicroVAX: Ethernet + packet radio + IP forwarding (+ §4.3 AC)."""

    stack: NetStack
    ether: EthernetInterface
    radio: RadioAttachment
    access_control: Optional[AccessControlTable] = None

    @property
    def radio_interface(self) -> PacketRadioInterface:
        """The packet radio interface of this gateway."""
        return self.radio.interface

    def enable_access_control(self, entry_ttl: Optional[int] = None,
                              tracer: Optional[Tracer] = None) -> AccessControlTable:
        """Turn on the §4.3 table (idempotent)."""
        if self.access_control is None:
            kwargs = {}
            if entry_ttl is not None:
                kwargs["entry_ttl"] = entry_ttl
            table = AccessControlTable(
                self.stack.sim, self.radio.interface, tracer=tracer, **kwargs
            )
            self.stack.forward_filter = table.filter
            self.stack.icmp_listeners.append(table.handle_icmp)
            self.access_control = table
        return self.access_control


def make_gateway(
    sim: Simulator,
    lan: EthernetLan,
    channel: RadioChannel,
    hostname: str,
    callsign: "AX25Address | str",
    ether_ip: "IPv4Address | str",
    radio_ip: "IPv4Address | str",
    mac_index: int,
    tracer: Optional[Tracer] = None,
    **radio_kwargs,
) -> GatewayHost:
    """Build the paper's gateway: both interfaces, forwarding on."""
    stack = NetStack(sim, hostname, tracer=tracer)
    stack.ip_forwarding = True
    deqna = Deqna(lan, MacAddress.station(mac_index), f"{hostname}.qe0")
    ether = EthernetInterface(sim, deqna, "qe0")
    stack.attach_interface(ether, ether_ip)
    radio = attach_kiss_radio(
        sim, stack, channel, callsign, radio_ip, tracer=tracer, **radio_kwargs
    )
    return GatewayHost(stack=stack, ether=ether, radio=radio)


def make_ethernet_host(
    sim: Simulator,
    lan: EthernetLan,
    hostname: str,
    ip: "IPv4Address | str",
    mac_index: int,
    tracer: Optional[Tracer] = None,
) -> NetStack:
    """An ordinary host on the department Ethernet."""
    stack = NetStack(sim, hostname, tracer=tracer)
    deqna = Deqna(lan, MacAddress.station(mac_index), f"{hostname}.qe0")
    iface = EthernetInterface(sim, deqna, "qe0")
    stack.attach_interface(iface, ip)
    return stack


class TerminalStation:
    """A human at a dumb terminal wired to a ROM TNC.

    :attr:`screen` accumulates everything the TNC prints;
    :meth:`type_line` models the operator typing a line and pressing
    return (bytes are spread out by the serial line's baud rate).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: RadioChannel,
        callsign: "AX25Address | str",
        serial_baud: int = 1200,
        tracer: Optional[Tracer] = None,
        timer_policy: Optional[Callable[[], LinkTimerPolicy]] = None,
    ) -> None:
        self.sim = sim
        self.serial = SerialLine(sim, baud=serial_baud, name=f"term-{callsign}")
        self.screen = bytearray()
        self.serial.a.on_receive(self.screen.append)
        self.tnc = RomTnc(
            sim, channel, self.serial.b, callsign, tracer=tracer, echo=False,
            timer_policy=timer_policy,
        )

    def type_line(self, text: str) -> None:
        """Type ``text`` and press return."""
        self.serial.a.write(text.encode("latin-1") + b"\r")

    def press_ctrl_c(self) -> None:
        """Send a Ctrl-C to the TNC."""
        self.serial.a.write(b"\x03")

    def screen_text(self) -> str:
        """Everything printed so far, newline-normalised."""
        return self.screen.decode("latin-1").replace("\r\n", "\n")

    @property
    def callsign(self) -> AX25Address:
        """This station's AX.25 callsign."""
        return self.tnc.callsign
