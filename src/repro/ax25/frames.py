"""AX.25 frame encoding and decoding.

A frame on the wire (after KISS/HDLC framing, which lives elsewhere) is:

    address field | control (1 byte) | [PID (1 byte)] | [info ...]

The PID byte is present only for I and UI frames; it is the field the
paper's driver inspects: "It also checks the protocol ID field.  If the
packet type is IP, the driver then adds the encapsulated IP packet to
the queue of incoming IP packets."

The FCS (frame check sequence) is computed by the TNC hardware in the
real system ("sends and receives data and calculates the necessary
checksums" -- KISS TNC code); our modem model likewise verifies a CRC,
so frames at this layer carry none.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ax25.address import (
    AX25Address,
    AX25Path,
    decode_address_field,
    encode_address_field,
)
from repro.ax25.defs import (
    PF_BIT,
    PID_NO_L3,
    FrameType,
    S_REJ,
    S_RNR,
    S_RR,
    U_DISC,
    U_DM,
    U_FRMR,
    U_SABM,
    U_UA,
    U_UI,
)


class FrameError(ValueError):
    """Raised when a byte string cannot be decoded as an AX.25 frame."""


_U_CONTROL_TO_TYPE = {
    U_SABM: FrameType.SABM,
    U_DISC: FrameType.DISC,
    U_DM: FrameType.DM,
    U_UA: FrameType.UA,
    U_UI: FrameType.UI,
    U_FRMR: FrameType.FRMR,
}
_TYPE_TO_U_CONTROL = {value: key for key, value in _U_CONTROL_TO_TYPE.items()}

_S_CONTROL_TO_TYPE = {
    S_RR: FrameType.RR,
    S_RNR: FrameType.RNR,
    S_REJ: FrameType.REJ,
}
_TYPE_TO_S_CONTROL = {value: key for key, value in _S_CONTROL_TO_TYPE.items()}


@dataclass(frozen=True)
class AX25Frame:
    """A decoded AX.25 frame.

    ``ns``/``nr`` are the modulo-8 send/receive sequence numbers and are
    meaningful only for the frame types that carry them (``ns`` for I
    frames, ``nr`` for I and supervisory frames).
    """

    destination: AX25Address
    source: AX25Address
    frame_type: FrameType
    path: AX25Path = AX25Path()
    pid: Optional[int] = None
    info: bytes = b""
    ns: int = 0
    nr: int = 0
    poll_final: bool = False
    command: bool = True

    # ------------------------------------------------------------------
    # constructors for the common cases
    # ------------------------------------------------------------------

    @classmethod
    def ui(
        cls,
        destination: AX25Address,
        source: AX25Address,
        pid: int,
        info: bytes,
        path: AX25Path = AX25Path(),
    ) -> "AX25Frame":
        """Unnumbered-information frame -- how IP datagrams travel."""
        return cls(
            destination=destination,
            source=source,
            frame_type=FrameType.UI,
            path=path,
            pid=pid,
            info=info,
        )

    @classmethod
    def i_frame(
        cls,
        destination: AX25Address,
        source: AX25Address,
        ns: int,
        nr: int,
        info: bytes,
        pid: int = PID_NO_L3,
        path: AX25Path = AX25Path(),
        poll: bool = False,
    ) -> "AX25Frame":
        """Numbered information frame (connected mode)."""
        return cls(
            destination=destination,
            source=source,
            frame_type=FrameType.I,
            path=path,
            pid=pid,
            info=info,
            ns=ns % 8,
            nr=nr % 8,
            poll_final=poll,
        )

    @classmethod
    def supervisory(
        cls,
        frame_type: FrameType,
        destination: AX25Address,
        source: AX25Address,
        nr: int,
        poll_final: bool = False,
        command: bool = True,
        path: AX25Path = AX25Path(),
    ) -> "AX25Frame":
        """RR / RNR / REJ frame."""
        if not frame_type.is_supervisory:
            raise FrameError(f"{frame_type} is not supervisory")
        return cls(
            destination=destination,
            source=source,
            frame_type=frame_type,
            path=path,
            nr=nr % 8,
            poll_final=poll_final,
            command=command,
        )

    @classmethod
    def unnumbered(
        cls,
        frame_type: FrameType,
        destination: AX25Address,
        source: AX25Address,
        poll_final: bool = False,
        command: bool = True,
        path: AX25Path = AX25Path(),
        info: bytes = b"",
    ) -> "AX25Frame":
        """SABM / DISC / DM / UA / FRMR frame."""
        if not frame_type.is_unnumbered or frame_type is FrameType.UI:
            raise FrameError(f"use a dedicated constructor for {frame_type}")
        return cls(
            destination=destination,
            source=source,
            frame_type=frame_type,
            path=path,
            poll_final=poll_final,
            command=command,
            info=info,
        )

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------

    def _control_byte(self) -> int:
        pf = PF_BIT if self.poll_final else 0
        if self.frame_type is FrameType.I:
            return ((self.nr & 0x07) << 5) | pf | ((self.ns & 0x07) << 1)
        if self.frame_type.is_supervisory:
            return ((self.nr & 0x07) << 5) | pf | _TYPE_TO_S_CONTROL[self.frame_type]
        return _TYPE_TO_U_CONTROL[self.frame_type] | pf

    def encode(self) -> bytes:
        """Serialise to the on-air byte string (no flags, no FCS)."""
        out = bytearray()
        out += encode_address_field(
            self.destination, self.source, self.path, command=self.command
        )
        out.append(self._control_byte())
        if self.frame_type in (FrameType.I, FrameType.UI):
            out.append(self.pid if self.pid is not None else PID_NO_L3)
            out += self.info
        elif self.info:
            # FRMR carries a 3-byte status field in its info part.
            out += self.info
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "AX25Frame":
        """Parse an on-air byte string back into a frame."""
        destination, source, path, is_command, offset = _decode_addresses(data)
        if len(data) <= offset:
            raise FrameError("frame has no control byte")
        control = data[offset]
        offset += 1
        poll_final = bool(control & PF_BIT)

        if control & 0x01 == 0:
            # I frame: bit 0 clear.
            ns = (control >> 1) & 0x07
            nr = (control >> 5) & 0x07
            if len(data) <= offset:
                raise FrameError("I frame missing PID byte")
            pid = data[offset]
            info = bytes(data[offset + 1 :])
            return cls(
                destination=destination,
                source=source,
                frame_type=FrameType.I,
                path=path,
                pid=pid,
                info=info,
                ns=ns,
                nr=nr,
                poll_final=poll_final,
                command=is_command,
            )

        if control & 0x03 == 0x01:
            # Supervisory frame: bits 1-0 == 01.
            subtype = control & 0x0F
            frame_type = _S_CONTROL_TO_TYPE.get(subtype)
            if frame_type is None:
                raise FrameError(f"unknown supervisory control 0x{control:02x}")
            nr = (control >> 5) & 0x07
            return cls(
                destination=destination,
                source=source,
                frame_type=frame_type,
                path=path,
                nr=nr,
                poll_final=poll_final,
                command=is_command,
            )

        # Unnumbered frame: bits 1-0 == 11.
        masked = control & ~PF_BIT
        frame_type = _U_CONTROL_TO_TYPE.get(masked)
        if frame_type is None:
            raise FrameError(f"unknown unnumbered control 0x{control:02x}")
        if frame_type is FrameType.UI:
            if len(data) <= offset:
                raise FrameError("UI frame missing PID byte")
            pid = data[offset]
            info = bytes(data[offset + 1 :])
            return cls(
                destination=destination,
                source=source,
                frame_type=FrameType.UI,
                path=path,
                pid=pid,
                info=info,
                poll_final=poll_final,
                command=is_command,
            )
        info = bytes(data[offset:]) if frame_type is FrameType.FRMR else b""
        return cls(
            destination=destination,
            source=source,
            frame_type=frame_type,
            path=path,
            poll_final=poll_final,
            command=is_command,
            info=info,
        )

    # ------------------------------------------------------------------
    # digipeating helpers
    # ------------------------------------------------------------------

    def digipeated_by(self, station: AX25Address) -> "AX25Frame":
        """Copy of this frame after ``station`` relays it (H bit set)."""
        return replace(self, path=self.path.mark_repeated(station))

    @property
    def link_destination(self) -> AX25Address:
        """The station that should act on the frame *next*.

        With a pending digipeater path this is the next digipeater;
        otherwise the final destination.
        """
        pending = self.path.next_unrepeated
        return pending if pending is not None else self.destination

    def __str__(self) -> str:
        via = f" via {self.path}" if self.path else ""
        body = ""
        if self.frame_type in (FrameType.I, FrameType.UI):
            body = f" pid=0x{(self.pid or 0):02x} len={len(self.info)}"
        seq = ""
        if self.frame_type is FrameType.I:
            seq = f" ns={self.ns} nr={self.nr}"
        elif self.frame_type.is_supervisory:
            seq = f" nr={self.nr}"
        return f"{self.source}>{self.destination}{via} {self.frame_type.value}{seq}{body}"


def _decode_addresses(data: bytes):
    try:
        return decode_address_field(data)
    except ValueError as exc:
        raise FrameError(str(exc)) from exc
