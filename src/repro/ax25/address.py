"""AX.25 addresses: callsign + SSID, on-air encoding, digipeater paths.

An AX.25 link address is an amateur radio callsign of up to six
characters followed by a 4-bit "secondary station identifier" (SSID),
written ``N7AKR-2``.  On the air each address occupies seven bytes: the
six callsign characters shifted left one bit (so bit 0 is free for the
address-extension flag), then an SSID byte packing the SSID, two
command/response or has-been-repeated bits, and the extension bit that
marks the final block of the address field.

The paper: "AX.25 addresses look like amateur radio callsigns followed
by a 4 bit system ID.  Things are complicated by the fact that some
entries may contain additional callsigns for digipeaters."  Both the
plain address and the digipeater path live here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ax25.defs import (
    ADDR_C_OR_H_BIT,
    ADDR_EXTENSION_BIT,
    ADDRESS_BLOCK_LEN,
    CALLSIGN_MAX,
    MAX_DIGIPEATERS,
    SSID_MASK,
    SSID_RESERVED_BITS,
)


class AddressError(ValueError):
    """Raised for malformed callsigns or undecodable address fields."""


_CALLSIGN_RE = re.compile(r"^[A-Z0-9]{1,6}$")


@dataclass(frozen=True)
class AX25Address:
    """A single AX.25 station address.

    ``repeated`` is only meaningful when the address appears as a
    digipeater entry: it is the "H" (has-been-repeated) bit that a
    digipeater sets when it relays the frame.
    """

    callsign: str
    ssid: int = 0
    repeated: bool = False

    def __post_init__(self) -> None:
        callsign = self.callsign.upper()
        if not _CALLSIGN_RE.match(callsign):
            raise AddressError(f"invalid callsign {self.callsign!r}")
        if not 0 <= self.ssid <= 15:
            raise AddressError(f"SSID out of range: {self.ssid}")
        object.__setattr__(self, "callsign", callsign)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "AX25Address":
        """Parse ``"N7AKR-2"`` or ``"N7AKR-2*"`` (trailing ``*`` = repeated)."""
        text = text.strip().upper()
        repeated = text.endswith("*")
        if repeated:
            text = text[:-1]
        if "-" in text:
            callsign, _, ssid_text = text.partition("-")
            try:
                ssid = int(ssid_text)
            except ValueError as exc:
                raise AddressError(f"bad SSID in {text!r}") from exc
        else:
            callsign, ssid = text, 0
        return cls(callsign, ssid, repeated)

    # ------------------------------------------------------------------
    # on-air encoding
    # ------------------------------------------------------------------

    def encode(self, last: bool, command: bool = False) -> bytes:
        """Encode to the 7-byte on-air block.

        ``last`` sets the address-extension bit marking the final block;
        ``command`` sets the C bit (v2.0 command/response discipline).
        """
        padded = self.callsign.ljust(CALLSIGN_MAX)
        block = bytearray((ord(char) << 1) & 0xFF for char in padded)
        ssid_byte = SSID_RESERVED_BITS | ((self.ssid & SSID_MASK) << 1)
        if command:
            ssid_byte |= ADDR_C_OR_H_BIT
        if self.repeated:
            ssid_byte |= ADDR_C_OR_H_BIT
        if last:
            ssid_byte |= ADDR_EXTENSION_BIT
        block.append(ssid_byte)
        return bytes(block)

    @classmethod
    def decode(cls, block: bytes) -> Tuple["AX25Address", bool, bool]:
        """Decode a 7-byte block.

        Returns ``(address, last, c_or_h_bit)`` where the final element is
        the top bit of the SSID byte (the C bit for dest/source blocks,
        the H bit for digipeater blocks -- the caller knows which role
        the block plays).
        """
        if len(block) != ADDRESS_BLOCK_LEN:
            raise AddressError(f"address block must be 7 bytes, got {len(block)}")
        chars = []
        for byte in block[:CALLSIGN_MAX]:
            if byte & ADDR_EXTENSION_BIT:
                raise AddressError("extension bit set inside callsign bytes")
            chars.append(chr(byte >> 1))
        callsign = "".join(chars).rstrip()
        if not callsign:
            raise AddressError("empty callsign in address block")
        ssid_byte = block[CALLSIGN_MAX]
        ssid = (ssid_byte >> 1) & SSID_MASK
        last = bool(ssid_byte & ADDR_EXTENSION_BIT)
        top_bit = bool(ssid_byte & ADDR_C_OR_H_BIT)
        return cls(callsign, ssid, repeated=top_bit), last, top_bit

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    @property
    def base(self) -> "AX25Address":
        """The same station address with the repeated flag cleared."""
        if not self.repeated:
            return self
        return AX25Address(self.callsign, self.ssid)

    def matches(self, other: "AX25Address") -> bool:
        """Station identity comparison (ignores the repeated flag)."""
        return self.callsign == other.callsign and self.ssid == other.ssid

    def with_repeated(self) -> "AX25Address":
        """Copy with the has-been-repeated bit set (digipeater action)."""
        return AX25Address(self.callsign, self.ssid, repeated=True)

    def __str__(self) -> str:
        text = self.callsign if self.ssid == 0 else f"{self.callsign}-{self.ssid}"
        return f"{text}*" if self.repeated else text


#: The link-layer broadcast address checked by the paper's driver.
BROADCAST = AX25Address("QST")


@dataclass(frozen=True)
class AX25Path:
    """An ordered digipeater path of at most eight stations.

    The paper: "The standard amateur packet radio link layer protocol
    allows the specification of up to eight digipeaters through which a
    packet is to pass.  This type of routing is known as source routing."
    """

    digipeaters: Tuple[AX25Address, ...] = ()

    def __post_init__(self) -> None:
        if len(self.digipeaters) > MAX_DIGIPEATERS:
            raise AddressError(
                f"at most {MAX_DIGIPEATERS} digipeaters allowed, got {len(self.digipeaters)}"
            )

    @classmethod
    def of(cls, *hops: "AX25Address | str") -> "AX25Path":
        """Build a path from addresses or parseable strings."""
        parsed = tuple(
            hop if isinstance(hop, AX25Address) else AX25Address.parse(hop) for hop in hops
        )
        return cls(parsed)

    def __len__(self) -> int:
        return len(self.digipeaters)

    def __iter__(self):
        return iter(self.digipeaters)

    def __bool__(self) -> bool:
        return bool(self.digipeaters)

    @property
    def next_unrepeated(self) -> "AX25Address | None":
        """The first digipeater that has not yet relayed the frame."""
        for hop in self.digipeaters:
            if not hop.repeated:
                return hop
        return None

    @property
    def fully_repeated(self) -> bool:
        """True when every hop has relayed (or there are no hops)."""
        return all(hop.repeated for hop in self.digipeaters)

    def mark_repeated(self, station: AX25Address) -> "AX25Path":
        """Return a path with ``station``'s first unrepeated entry marked.

        This is the digipeater's state update when it relays a frame.
        """
        hops: List[AX25Address] = []
        done = False
        for hop in self.digipeaters:
            if not done and not hop.repeated and hop.matches(station):
                hops.append(hop.with_repeated())
                done = True
            else:
                hops.append(hop)
        if not done:
            raise AddressError(f"{station} is not a pending digipeater in {self}")
        return AX25Path(tuple(hops))

    def reversed(self) -> "AX25Path":
        """The return path (hops reversed, repeated bits cleared)."""
        return AX25Path(tuple(hop.base for hop in reversed(self.digipeaters)))

    def __str__(self) -> str:
        return ",".join(str(hop) for hop in self.digipeaters)


def parse_path(text: str) -> AX25Path:
    """Parse ``"WB7XYZ-1,K3MC-7*"`` style comma-separated paths."""
    text = text.strip()
    if not text:
        return AX25Path()
    return AX25Path.of(*(part for part in text.split(",") if part.strip()))


def encode_address_field(
    destination: AX25Address,
    source: AX25Address,
    path: AX25Path = AX25Path(),
    command: bool = True,
) -> bytes:
    """Encode the full variable-length address field of a frame."""
    blocks = bytearray()
    hops: Sequence[AX25Address] = path.digipeaters
    blocks += destination.encode(last=False, command=command)
    blocks += source.encode(last=not hops, command=not command)
    for index, hop in enumerate(hops):
        blocks += hop.encode(last=index == len(hops) - 1)
    return bytes(blocks)


def decode_address_field(data: bytes) -> Tuple[AX25Address, AX25Address, AX25Path, bool, int]:
    """Decode destination, source, digipeater path from a frame prefix.

    Returns ``(destination, source, path, is_command, bytes_consumed)``.
    """
    if len(data) < 2 * ADDRESS_BLOCK_LEN:
        raise AddressError("address field truncated")
    destination, dest_last, dest_c = AX25Address.decode(data[:ADDRESS_BLOCK_LEN])
    if dest_last:
        raise AddressError("address field ends after destination")
    destination = destination.base
    source, src_last, src_c = AX25Address.decode(
        data[ADDRESS_BLOCK_LEN : 2 * ADDRESS_BLOCK_LEN]
    )
    source = source.base
    is_command = dest_c and not src_c
    offset = 2 * ADDRESS_BLOCK_LEN
    hops: List[AX25Address] = []
    last = src_last
    while not last:
        if len(hops) >= MAX_DIGIPEATERS:
            raise AddressError("more than 8 digipeaters in address field")
        if len(data) < offset + ADDRESS_BLOCK_LEN:
            raise AddressError("digipeater block truncated")
        hop, last, _ = AX25Address.decode(data[offset : offset + ADDRESS_BLOCK_LEN])
        hops.append(hop)
        offset += ADDRESS_BLOCK_LEN
    return destination, source, AX25Path(tuple(hops)), is_command, offset


def is_broadcast(address: AX25Address) -> bool:
    """True for the QST broadcast address (any SSID)."""
    return address.callsign == BROADCAST.callsign
