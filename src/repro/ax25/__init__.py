"""AX.25 v2.0 link-layer protocol (Fox, ARRL 1984).

This package implements the amateur packet radio link layer the paper
ports into the Ultrix kernel:

* :mod:`~repro.ax25.address` -- callsign + 4-bit SSID addresses, the
  shifted on-air encoding, and digipeater paths (up to 8 repeaters).
* :mod:`~repro.ax25.frames` -- I/S/U frame encode and decode, control
  field (modulo-8 sequence numbers), PID byte.
* :mod:`~repro.ax25.lapb` -- the connected-mode ("level 2") balanced
  link state machine used by the firmware of a normal TNC and by the
  application-layer gateway of the paper's §2.4.

IP-over-AX.25 (what the gateway actually forwards) uses UI frames with
``PID_IP``; the connected mode exists for terminal/BBS users.
"""

from repro.ax25.address import AX25Address, AX25Path, AddressError
from repro.ax25.defs import (
    ADDR_C_OR_H_BIT,
    ADDR_EXTENSION_BIT,
    CONTROL_UI,
    FrameType,
    MAX_DIGIPEATERS,
    PID_ARPA_ARP,
    PID_ARPA_IP,
    PID_NETROM,
    PID_NO_L3,
    SSID_MASK,
    SSID_RESERVED_BITS,
)
from repro.ax25.frames import AX25Frame, FrameError
from repro.ax25.lapb import LapbConnection, LapbEndpoint, LapbState

__all__ = [
    "ADDR_C_OR_H_BIT",
    "ADDR_EXTENSION_BIT",
    "AX25Address",
    "AX25Frame",
    "AX25Path",
    "AddressError",
    "CONTROL_UI",
    "SSID_MASK",
    "SSID_RESERVED_BITS",
    "FrameError",
    "FrameType",
    "LapbConnection",
    "LapbEndpoint",
    "LapbState",
    "MAX_DIGIPEATERS",
    "PID_ARPA_ARP",
    "PID_ARPA_IP",
    "PID_NETROM",
    "PID_NO_L3",
]
