"""AX.25 protocol constants (v2.0).

Values follow Fox, "AX.25 Amateur Packet-Radio Link-Layer Protocol,
Version 2.0", ARRL 1984 -- reference [3] of the paper.
"""

from __future__ import annotations

import enum

#: Maximum digipeaters in a source route (the paper: "up to eight").
MAX_DIGIPEATERS = 8

#: Maximum callsign length (characters, excluding SSID).
CALLSIGN_MAX = 6

#: Bytes per on-air address block (6 shifted callsign chars + SSID byte).
ADDRESS_BLOCK_LEN = 7

#: Default maximum I/UI-frame information field length (bytes).
DEFAULT_PACLEN = 256

#: Modulo for send/receive sequence numbers (AX.25 v2.0 basic mode).
SEQUENCE_MODULO = 8

#: Default outstanding-frame window (k); v2.0 allows up to 7 modulo 8.
DEFAULT_WINDOW = 4

#: Default retry limit (N2 in the spec).
DEFAULT_RETRIES = 10

# ----------------------------------------------------------------------
# Address-field bit layout.  Each 7-byte address block carries six
# callsign characters shifted left one bit, then an SSID byte packing
# these fields.  Canonical here so reprolint's protocol-invariant pass
# can cross-check any module that touches the wire format.
# ----------------------------------------------------------------------

#: 4-bit SSID within the SSID byte (before the <<1 shift).
SSID_MASK = 0x0F

#: The two reserved bits of the SSID byte, transmitted as ones.
SSID_RESERVED_BITS = 0x60

#: Top bit of the SSID byte: the C (command/response) bit on
#: destination/source blocks, the H (has-been-repeated) bit on
#: digipeater blocks.
ADDR_C_OR_H_BIT = 0x80

#: Bit 0 of every address byte; set only on the final block's SSID byte
#: to mark the end of the address field.
ADDR_EXTENSION_BIT = 0x01

# ----------------------------------------------------------------------
# PID (protocol identifier) values -- the layer-3 demultiplexing byte the
# paper's driver inspects to decide whether a frame carries IP.
# ----------------------------------------------------------------------

#: ARPA Internet Protocol.
PID_ARPA_IP = 0xCC
PID_IP = PID_ARPA_IP

#: ARPA Address Resolution Protocol.
PID_ARPA_ARP = 0xCD
PID_ARP = PID_ARPA_ARP

#: NET/ROM network layer.
PID_NETROM = 0xCF

#: No layer-3 protocol (plain connected-mode text, BBS traffic).
PID_NO_L3 = 0xF0

# ----------------------------------------------------------------------
# Control field values
# ----------------------------------------------------------------------

#: Unnumbered Information frame control byte (UI, poll bit clear).
CONTROL_UI = 0x03

#: Poll/Final bit within a control byte.
PF_BIT = 0x10

# Unnumbered frame types (control byte with P/F masked out).
U_SABM = 0x2F   # connect request (Set Asynchronous Balanced Mode)
U_DISC = 0x43   # disconnect request
U_DM = 0x0F     # disconnected mode (connection refused / not connected)
U_UA = 0x63     # unnumbered acknowledge
U_UI = 0x03     # unnumbered information
U_FRMR = 0x87   # frame reject

# Supervisory frame subtypes (bits 2-3 of the control byte).
S_RR = 0x01     # receive ready
S_RNR = 0x05    # receive not ready
S_REJ = 0x09    # reject


class FrameType(enum.Enum):
    """Decoded class of an AX.25 frame."""

    I = "I"          # information (numbered)
    RR = "RR"        # receive ready
    RNR = "RNR"      # receive not ready
    REJ = "REJ"      # reject
    SABM = "SABM"    # connect
    DISC = "DISC"    # disconnect
    DM = "DM"        # disconnected mode
    UA = "UA"        # unnumbered ack
    UI = "UI"        # unnumbered information
    FRMR = "FRMR"    # frame reject

    @property
    def is_unnumbered(self) -> bool:
        """True for U-frame types."""
        return self in (
            FrameType.SABM,
            FrameType.DISC,
            FrameType.DM,
            FrameType.UA,
            FrameType.UI,
            FrameType.FRMR,
        )

    @property
    def is_supervisory(self) -> bool:
        """True for S-frame types (RR/RNR/REJ)."""
        return self in (FrameType.RR, FrameType.RNR, FrameType.REJ)
