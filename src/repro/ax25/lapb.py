"""AX.25 connected mode (level 2) -- the LAPB-style balanced link.

This is the protocol a stock TNC speaks in firmware and what terminal
users ride when they type ``connect KB7DZ``.  The paper's gateway does
not need it for IP (IP rides UI frames), but §2.4's application-layer
gateway and the BBS do: "A user program can then read from this line,
and maintain the state required to keep track of AX.25 level [2]
connections."

The implementation covers the working core of AX.25 v2.0: SABM/UA
connection establishment, DISC/UA release, DM refusal, modulo-8 I-frame
numbering with a configurable window, cumulative acknowledgement, T1
retransmission with exponential backoff, N2 retry give-up, REJ-based
go-back-N recovery, and RNR flow control.  Omitted relative to the full
spec (documented here so nobody goes hunting): FRMR generation beyond
unexpected-frame cases, XID negotiation, and the modulo-128 extension.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.ax25.address import AX25Address, AX25Path
from repro.ax25.defs import (
    DEFAULT_PACLEN,
    DEFAULT_RETRIES,
    DEFAULT_WINDOW,
    PID_NO_L3,
    SEQUENCE_MODULO,
    FrameType,
)
from repro.ax25.frames import AX25Frame
from repro.sim.clock import MS, SECOND
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# T1 timer policies
# ----------------------------------------------------------------------

class LinkTimerPolicy:
    """Strategy interface for the T1 retransmission timer.

    Mirrors :class:`repro.inet.tcp.RtoPolicy` one layer down: the
    connection feeds I-frame round-trip samples (never from
    retransmitted frames -- Karn's rule) and asks for the delay to arm,
    already scaled by the retry count's exponential backoff.
    """

    def current(self, retry_count: int) -> int:
        """The T1 delay to arm now, in microseconds."""
        raise NotImplementedError

    def sample(self, rtt: int) -> None:
        """Feed one I-frame round-trip measurement."""

    def describe(self) -> str:
        """One-line human-readable description."""
        return type(self).__name__


class FixedLinkTimer(LinkTimerPolicy):
    """The classic TNC behaviour: a configured T1, doubling per retry.

    This is exactly what the firmware of a ROM TNC does -- FRACK is a
    knob the operator sets once, regardless of whether the path is one
    hop of clear 9600 baud or three digipeats of contested 1200.
    """

    MAX_SHIFT = 4

    def __init__(self, t1: int = 5 * SECOND) -> None:
        self.t1 = t1

    def current(self, retry_count: int) -> int:
        """The timeout value to arm now, in microseconds."""
        return self.t1 * (1 << min(retry_count, self.MAX_SHIFT))

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"FixedLinkTimer({self.t1 / SECOND:.2f}s)"


class AdaptiveLinkTimer(LinkTimerPolicy):
    """Jacobson-smoothed T1 from measured I-frame round trips.

    srtt/rttvar integer estimation exactly as the TCP layer does it,
    T1 = srtt + 4*rttvar clamped to [min_t1, max_t1], with capped
    exponential backoff on retries.  The *connection* enforces Karn's
    rule by never feeding samples for retransmitted frames.
    """

    MAX_SHIFT = 4

    def __init__(self, initial_t1: int = 5 * SECOND,
                 min_t1: int = 500 * MS,
                 max_t1: int = 60 * SECOND) -> None:
        self.initial_t1 = initial_t1
        self.min_t1 = min_t1
        self.max_t1 = max_t1
        self.srtt: Optional[int] = None
        self.rttvar = 0
        self.samples = 0

    def current(self, retry_count: int) -> int:
        """The timeout value to arm now, in microseconds."""
        if self.srtt is None:
            base = self.initial_t1
        else:
            base = self.srtt + 4 * self.rttvar
        base = max(self.min_t1, min(base, self.max_t1))
        return min(base << min(retry_count, self.MAX_SHIFT), self.max_t1)

    def sample(self, rtt: int) -> None:
        """Feed one I-frame round-trip measurement."""
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt // 2
        else:
            delta = rtt - self.srtt
            self.srtt += delta // 8
            self.rttvar += (abs(delta) - self.rttvar) // 4

    def describe(self) -> str:
        """One-line human-readable description."""
        srtt = "?" if self.srtt is None else f"{self.srtt / SECOND:.2f}s"
        return f"AdaptiveLinkTimer(srtt={srtt})"


@dataclass
class _UnackedI:
    """One I frame in flight: sequence, payload, Karn bookkeeping."""

    ns: int
    info: bytes
    sent_at: int
    retransmitted: bool = False


class LapbState(enum.Enum):
    """Connection states (subset of the AX.25 v2.0 state chart)."""

    DISCONNECTED = "disconnected"
    AWAITING_CONNECTION = "awaiting-connection"
    CONNECTED = "connected"
    AWAITING_RELEASE = "awaiting-release"


class LapbConnection:
    """One balanced link between two stations.

    Created by :class:`LapbEndpoint`; applications interact through
    :meth:`send` and the endpoint's callbacks.
    """

    def __init__(
        self,
        endpoint: "LapbEndpoint",
        remote: AX25Address,
        path: AX25Path,
        window: int,
        t1: int,
        retries: int,
        timer_policy: Optional[LinkTimerPolicy] = None,
    ) -> None:
        self.endpoint = endpoint
        self.remote = remote
        self.path = path
        self.window = window
        self.t1 = t1
        self.retries = retries
        self.timer_policy = timer_policy or FixedLinkTimer(t1)

        self.state = LapbState.DISCONNECTED
        self.vs = 0                      # next send sequence number V(S)
        self.vr = 0                      # expected receive number V(R)
        self.va = 0                      # oldest unacknowledged V(A)
        self.peer_busy = False           # remote sent RNR
        self.retry_count = 0
        self.send_queue: Deque[bytes] = deque()      # not yet transmitted
        self.unacked: Deque[_UnackedI] = deque()     # I frames in flight
        self._t1_event: Optional[Event] = None
        self._rej_outstanding = False
        self.local_busy = False
        self.giveup_drops = 0            # I frames abandoned at N2 give-up

        # statistics for tests and benches
        self.stats = {
            "i_sent": 0,
            "i_acked": 0,
            "i_rexmit": 0,
            "i_received": 0,
            "rej_sent": 0,
            "rej_received": 0,
            "frmr_sent": 0,
            "bytes_delivered": 0,
            "rtt_samples": 0,
            "i_abandoned": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Initiate the link (send SABM, await UA)."""
        if self.state is not LapbState.DISCONNECTED:
            return
        self.state = LapbState.AWAITING_CONNECTION
        self.retry_count = 0
        self._send_u(FrameType.SABM, poll_final=True)
        self._start_t1()

    def disconnect(self) -> None:
        """Release the link (send DISC, await UA)."""
        if self.state is LapbState.DISCONNECTED:
            return
        if self.state is LapbState.AWAITING_CONNECTION:
            self._enter_disconnected(notify=True)
            return
        self.state = LapbState.AWAITING_RELEASE
        self.retry_count = 0
        self._send_u(FrameType.DISC, poll_final=True)
        self._start_t1()

    def send(self, data: bytes, pid: int = PID_NO_L3) -> None:
        """Queue application data; it is segmented to PACLEN and windowed."""
        if self.state is not LapbState.CONNECTED:
            raise ConnectionError(f"link to {self.remote} is {self.state.value}")
        paclen = self.endpoint.paclen
        if not data:
            self.send_queue.append(b"")
        else:
            for start in range(0, len(data), paclen):
                self.send_queue.append(data[start : start + paclen])
        self._pump()

    def set_local_busy(self, busy: bool) -> None:
        """Declare this end's receive buffers full (RNR) or free (RR).

        While busy, incoming I frames are discarded unacknowledged and
        polls are answered with RNR, exactly as a TNC with a full
        buffer pool behaves.
        """
        if busy == self.local_busy:
            return
        self.local_busy = busy
        if self.state is LapbState.CONNECTED:
            self._send_s(FrameType.RNR if busy else FrameType.RR)

    @property
    def connected(self) -> bool:
        """True while connected."""
        return self.state is LapbState.CONNECTED

    @property
    def in_flight(self) -> int:
        """Number of unacknowledged I frames."""
        return len(self.unacked)

    # ------------------------------------------------------------------
    # frame transmission
    # ------------------------------------------------------------------

    def _send_u(self, frame_type: FrameType, poll_final: bool, command: bool = True) -> None:
        frame = AX25Frame.unnumbered(
            frame_type,
            destination=self.remote,
            source=self.endpoint.address,
            poll_final=poll_final,
            command=command,
            path=self.path,
        )
        self.endpoint.transmit(frame)

    def _send_s(self, frame_type: FrameType, poll_final: bool = False, command: bool = False) -> None:
        frame = AX25Frame.supervisory(
            frame_type,
            destination=self.remote,
            source=self.endpoint.address,
            nr=self.vr,
            poll_final=poll_final,
            command=command,
            path=self.path,
        )
        if frame_type is FrameType.REJ:
            self.stats["rej_sent"] += 1
        self.endpoint.transmit(frame)

    def _pump(self) -> None:
        """Transmit queued I frames while the window allows."""
        if self.state is not LapbState.CONNECTED or self.peer_busy:
            return
        while self.send_queue and len(self.unacked) < self.window:
            info = self.send_queue.popleft()
            frame = AX25Frame.i_frame(
                destination=self.remote,
                source=self.endpoint.address,
                ns=self.vs,
                nr=self.vr,
                info=info,
                path=self.path,
            )
            self.unacked.append(_UnackedI(
                ns=self.vs, info=info, sent_at=self.endpoint.sim.now))
            self.vs = (self.vs + 1) % SEQUENCE_MODULO
            self.stats["i_sent"] += 1
            self.endpoint.transmit(frame)
        if self.unacked and self._t1_event is None:
            self._start_t1()

    def _retransmit_window(self) -> None:
        """Go-back-N: resend every unacknowledged I frame in order.

        Each resent frame is marked so its eventual acknowledgement
        yields no RTT sample (Karn's rule: the round trip is ambiguous).
        """
        for entry in self.unacked:
            frame = AX25Frame.i_frame(
                destination=self.remote,
                source=self.endpoint.address,
                ns=entry.ns,
                nr=self.vr,
                info=entry.info,
                path=self.path,
            )
            entry.retransmitted = True
            self.stats["i_rexmit"] += 1
            self._observe_recovery(retransmits=1)
            self.endpoint.transmit(frame)
        if self.unacked:
            self._start_t1()

    def _observe_recovery(self, retransmits: int = 0) -> None:
        """Sample T1 into the flight recorder's recovery instruments.

        Mirrors the TCP layer's gauges one layer down: the ``lapb_t1_us``
        gauge tracks the armed timeout as the policy adapts, and the
        windowed rate counts go-back-N retransmissions per 10 seconds.
        """
        tracer = self.endpoint.tracer
        recorder = tracer.flight if tracer is not None else None
        if recorder is None:
            return
        recorder.instruments.gauge("lapb_t1_us").sample(
            self.timer_policy.current(self.retry_count))
        if retransmits:
            recorder.instruments.rate(
                "lapb_rexmit_per_10s", 10 * SECOND).tick(
                    self.endpoint.sim.now, retransmits)

    # ------------------------------------------------------------------
    # T1 timer
    # ------------------------------------------------------------------

    def _start_t1(self) -> None:
        self._stop_t1()
        delay = self.timer_policy.current(self.retry_count)
        self._t1_event = self.endpoint.sim.schedule(
            delay, self._t1_expired, label=f"lapb-t1 {self.endpoint.address}->{self.remote}"
        )

    def _stop_t1(self) -> None:
        if self._t1_event is not None:
            self._t1_event.cancel()
            self._t1_event = None

    def _t1_expired(self) -> None:
        self._t1_event = None
        self.retry_count += 1
        if self.retry_count > self.retries:
            self._enter_disconnected(notify=True, reason="retry limit")
            return
        if self.state is LapbState.AWAITING_CONNECTION:
            self._send_u(FrameType.SABM, poll_final=True)
            self._start_t1()
        elif self.state is LapbState.AWAITING_RELEASE:
            self._send_u(FrameType.DISC, poll_final=True)
            self._start_t1()
        elif self.state is LapbState.CONNECTED:
            if self.unacked:
                self._retransmit_window()
            else:
                # poll the peer's status
                self._send_s(FrameType.RR, poll_final=True, command=True)
                self._start_t1()

    # ------------------------------------------------------------------
    # frame reception (called by the endpoint)
    # ------------------------------------------------------------------

    def handle_frame(self, frame: AX25Frame) -> None:
        """Process one received frame for this connection/endpoint."""
        handler = {
            FrameType.SABM: self._on_sabm,
            FrameType.UA: self._on_ua,
            FrameType.DISC: self._on_disc,
            FrameType.DM: self._on_dm,
            FrameType.I: self._on_i,
            FrameType.RR: self._on_rr,
            FrameType.RNR: self._on_rnr,
            FrameType.REJ: self._on_rej,
            FrameType.FRMR: self._on_frmr,
        }.get(frame.frame_type)
        if handler is not None:
            handler(frame)

    def _on_sabm(self, frame: AX25Frame) -> None:
        if not self.endpoint.accept_connections:
            self._send_u(FrameType.DM, poll_final=frame.poll_final, command=False)
            return
        # (Re)establish: reset state, acknowledge.
        self._reset_sequence()
        was_connected = self.state is LapbState.CONNECTED
        self.state = LapbState.CONNECTED
        self._stop_t1()
        self._send_u(FrameType.UA, poll_final=frame.poll_final, command=False)
        if not was_connected:
            self.endpoint.notify_connect(self, initiated=False)

    def _on_ua(self, frame: AX25Frame) -> None:
        if self.state is LapbState.AWAITING_CONNECTION:
            self.state = LapbState.CONNECTED
            self._stop_t1()
            self.retry_count = 0
            self._reset_sequence()
            self.endpoint.notify_connect(self, initiated=True)
            self._pump()
        elif self.state is LapbState.AWAITING_RELEASE:
            self._enter_disconnected(notify=True)

    def _on_disc(self, frame: AX25Frame) -> None:
        self._send_u(FrameType.UA, poll_final=frame.poll_final, command=False)
        if self.state is not LapbState.DISCONNECTED:
            self._enter_disconnected(notify=True)

    def _on_dm(self, frame: AX25Frame) -> None:
        if self.state in (LapbState.AWAITING_CONNECTION, LapbState.AWAITING_RELEASE, LapbState.CONNECTED):
            self._enter_disconnected(notify=True, reason="DM")

    def _on_frmr(self, frame: AX25Frame) -> None:
        # v2.0 recovery from FRMR is link reset.
        if self.state is LapbState.CONNECTED:
            self.state = LapbState.AWAITING_CONNECTION
            self.retry_count = 0
            self._send_u(FrameType.SABM, poll_final=True)
            self._start_t1()

    def _on_i(self, frame: AX25Frame) -> None:
        if self.state is not LapbState.CONNECTED:
            # Only a *disconnected* station answers DM.  While awaiting
            # connection (our SABM out, their UA lost) an early I frame
            # must be ignored: a DM here would tear down the half-open
            # link the peer believes is already up.
            if self.state is LapbState.DISCONNECTED:
                self._send_u(FrameType.DM, poll_final=frame.poll_final,
                             command=False)
            return
        self._apply_ack(frame.nr)
        if self.local_busy:
            # Receive buffers full: discard without advancing V(R).
            self._send_s(FrameType.RNR, poll_final=frame.poll_final)
            return
        if frame.ns == self.vr:
            self.vr = (self.vr + 1) % SEQUENCE_MODULO
            self.stats["i_received"] += 1
            self.stats["bytes_delivered"] += len(frame.info)
            self._rej_outstanding = False
            self.endpoint.notify_data(self, frame.info, frame.pid or PID_NO_L3)
            # Acknowledge.  A real implementation may piggyback; we send RR
            # unless an I frame is about to go out carrying the new N(R).
            if self.send_queue and len(self.unacked) < self.window and not self.peer_busy:
                self._pump()
            else:
                self._send_s(FrameType.RR, poll_final=frame.poll_final)
        else:
            # Out of sequence: request go-back-N once per gap.
            if not getattr(self, "_rej_outstanding", False):
                self._send_s(FrameType.REJ, poll_final=frame.poll_final)
                self._rej_outstanding = True

    def _on_rr(self, frame: AX25Frame) -> None:
        self.peer_busy = False
        self._apply_ack(frame.nr)
        if frame.command and frame.poll_final:
            self._send_s(FrameType.RNR if self.local_busy else FrameType.RR,
                         poll_final=True)
        self._pump()

    def _on_rnr(self, frame: AX25Frame) -> None:
        self.peer_busy = True
        self._apply_ack(frame.nr)
        if frame.command and frame.poll_final:
            self._send_s(FrameType.RNR if self.local_busy else FrameType.RR,
                         poll_final=True)
        # Keep T1 running so we poll the busy peer.
        if self._t1_event is None:
            self._start_t1()

    def _on_rej(self, frame: AX25Frame) -> None:
        self.stats["rej_received"] += 1
        self.peer_busy = False
        self._apply_ack(frame.nr)
        self._retransmit_window()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _nr_valid(self, nr: int) -> bool:
        """Is N(R) within the legal window [V(A), V(S)] modulo 8?"""
        span = (self.vs - self.va) % SEQUENCE_MODULO
        offset = (nr - self.va) % SEQUENCE_MODULO
        return offset <= span

    def _apply_ack(self, nr: int) -> None:
        """Release frames acknowledged by N(R) (cumulative).

        An N(R) outside [V(A), V(S)] is a protocol error: AX.25 v2.0
        answers with FRMR, and the peer resets the link.
        """
        if not self._nr_valid(nr):
            self.stats["frmr_sent"] += 1
            self._send_u(FrameType.FRMR, poll_final=False, command=False)
            return
        while self.unacked:
            entry = self.unacked[0]
            # ns is acknowledged if it lies in [va, nr) modulo 8.
            if _seq_in_range(entry.ns, self.va, nr):
                self.unacked.popleft()
                self.stats["i_acked"] += 1
                self.va = (entry.ns + 1) % SEQUENCE_MODULO
                self.retry_count = 0
                if not entry.retransmitted:
                    # Karn's rule: only unambiguous round trips train T1.
                    self.timer_policy.sample(
                        self.endpoint.sim.now - entry.sent_at)
                    self.stats["rtt_samples"] += 1
                    self._observe_recovery()
            else:
                break
        # Only the CONNECTED state may retire T1 here: while awaiting
        # connection or release, T1 guards the outstanding SABM/DISC,
        # and a crossing RR/RNR/REJ acking the last I frame must not
        # kill the only timer that can recover a lost UA.  (Found by
        # reprocheck: RR crossing DISC left AWAITING_RELEASE timerless.)
        if not self.unacked and self.state is LapbState.CONNECTED:
            self._stop_t1()
        self._pump()

    def _reset_sequence(self) -> None:
        self.vs = self.vr = self.va = 0
        self.peer_busy = False
        self.local_busy = False
        # A link reset with I frames still in flight kills them: account
        # each one (counter + span terminal) instead of clearing the
        # deque silently, so every sent frame has a recorded fate --
        #   i_sent == i_acked + in_flight + i_abandoned
        # holds in *every* reachable state (the reprocheck LAPB
        # conservation invariant).
        if self.unacked:
            self._abandon_unacked("link reset")
        self._rej_outstanding = False

    def _enter_disconnected(self, notify: bool, reason: str = "") -> None:
        previous = self.state
        self.state = LapbState.DISCONNECTED
        self._stop_t1()
        self.send_queue.clear()
        if self.unacked:
            self._abandon_unacked(reason or "disconnect")
        if notify and previous is not LapbState.DISCONNECTED:
            self.endpoint.notify_disconnect(self, reason)

    def _abandon_unacked(self, why: str) -> None:
        """Account for every I frame the link gives up on.

        N2 give-up (and any other disconnect with frames in flight) used
        to clear ``unacked`` silently; these frames died without a
        counter bump or a span terminal, so the flight recorder's
        conservation census could not see them.  Each abandoned frame
        now bumps the drop counter and emits a paired observation --
        a trace record always, plus a span terminal when the payload is
        an IP datagram the recorder is following.
        """
        tracer = self.endpoint.tracer
        source = str(self.endpoint.address)
        for entry in self.unacked:
            self.giveup_drops += 1
            self.stats["i_abandoned"] += 1
            if tracer is not None:
                tracer.log(
                    "lapb.giveup", source,
                    f"abandoning I frame ns={entry.ns} to {self.remote}",
                    reason=why, bytes=len(entry.info),
                )
                if tracer.flight is not None:
                    tracer.flight.drop(entry.info, "lapb.giveup", source,
                                       "link_giveup")
        self.unacked.clear()


def _seq_in_range(ns: int, va: int, nr: int) -> bool:
    """True when ``ns`` is within [va, nr) in modulo-8 arithmetic."""
    if va == nr:
        return False
    if va < nr:
        return va <= ns < nr
    return ns >= va or ns < nr


class LapbEndpoint:
    """Multiplexes LAPB connections for one station.

    Owns a map of per-remote :class:`LapbConnection` objects.  The owner
    supplies ``send_frame`` (how frames reach the air -- typically a TNC
    or driver transmit queue) and receives callbacks:

    * ``on_connect(connection, initiated)``
    * ``on_data(connection, data, pid)``
    * ``on_disconnect(connection, reason)``
    """

    def __init__(
        self,
        sim: Simulator,
        address: AX25Address,
        send_frame: Callable[[AX25Frame], None],
        t1: int = 5 * SECOND,
        window: int = DEFAULT_WINDOW,
        retries: int = DEFAULT_RETRIES,
        paclen: int = DEFAULT_PACLEN,
        accept_connections: bool = True,
        timer_policy: Optional[Callable[[], LinkTimerPolicy]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.send_frame = send_frame
        self.t1 = t1
        self.window = window
        self.retries = retries
        self.paclen = paclen
        self.accept_connections = accept_connections
        #: per-connection T1 policy factory; None = FixedLinkTimer(t1)
        self.timer_policy = timer_policy
        #: optional shared tracer; gives N2 give-up a span terminal
        self.tracer = tracer
        self.connections: Dict[str, LapbConnection] = {}

        self.on_connect: Optional[Callable[[LapbConnection, bool], None]] = None
        self.on_data: Optional[Callable[[LapbConnection, bytes, int], None]] = None
        self.on_disconnect: Optional[Callable[[LapbConnection, str], None]] = None
        self.frames_transmitted = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def connection(self, remote: AX25Address, path: AX25Path = AX25Path()) -> LapbConnection:
        """Get or create the connection object for ``remote``."""
        key = str(remote)
        conn = self.connections.get(key)
        if conn is None:
            conn = LapbConnection(
                self, remote, path, window=self.window, t1=self.t1,
                retries=self.retries,
                timer_policy=(self.timer_policy()
                              if self.timer_policy is not None else None),
            )
            self.connections[key] = conn
        return conn

    def connect(self, remote: AX25Address, path: AX25Path = AX25Path()) -> LapbConnection:
        """Initiate a connection to ``remote``."""
        conn = self.connection(remote, path)
        conn.path = path
        conn.connect()
        return conn

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    def transmit(self, frame: AX25Frame) -> None:
        """Transmit toward the hardware/medium."""
        self.frames_transmitted += 1
        self.send_frame(frame)

    def handle_frame(self, frame: AX25Frame) -> None:
        """Feed a received frame addressed to this station."""
        if not frame.destination.matches(self.address):
            return
        if frame.frame_type is FrameType.UI:
            return  # UI frames are connectionless; not ours to handle
        remote = frame.source
        conn = self.connections.get(str(remote))
        if conn is None:
            if frame.frame_type is FrameType.SABM:
                conn = self.connection(remote, frame.path.reversed())
            else:
                # Not connected and not a connect request: per spec answer DM
                # to commands with P set.
                if frame.command and frame.poll_final:
                    dm = AX25Frame.unnumbered(
                        FrameType.DM,
                        destination=remote,
                        source=self.address,
                        poll_final=True,
                        command=False,
                        path=frame.path.reversed(),
                    )
                    self.transmit(dm)
                return
        conn.handle_frame(frame)

    # ------------------------------------------------------------------
    # callbacks from connections
    # ------------------------------------------------------------------

    def notify_connect(self, conn: LapbConnection, initiated: bool) -> None:
        """Dispatch the on_connect callback."""
        if self.on_connect is not None:
            self.on_connect(conn, initiated)

    def notify_data(self, conn: LapbConnection, data: bytes, pid: int) -> None:
        """Dispatch the on_data callback."""
        if self.on_data is not None:
            self.on_data(conn, data, pid)

    def notify_disconnect(self, conn: LapbConnection, reason: str) -> None:
        """Dispatch the on_disconnect callback."""
        if self.on_disconnect is not None:
            self.on_disconnect(conn, reason)
