"""Traffic generators: session models driven by an arrival process.

Each generator owns one "user" of the network -- a pinging host, a UDP
blaster, a TCP file mover, a pair of ragchewing AX.25 stations, or a
terminal user on the BBS -- and converts an
:class:`~repro.workload.arrivals.ArrivalProcess` into actual traffic
through the stack's public interfaces.  Generators never reach into the
simulator's internals: they schedule events and call the same APIs the
examples use, so workload traffic is indistinguishable from
hand-written scenario traffic.

Every generator accumulates a :class:`~repro.metrics.counters.CounterSet`
and reports a flat ``metrics()`` dict, which the scenario layer and the
experiment harness aggregate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.apps.ping import Pinger
from repro.inet.netstack import NetStack
from repro.inet.sockets import TcpServerSocket, TcpSocket, UdpSocket
from repro.metrics.counters import CounterSet
from repro.radio.station import RadioStation
from repro.sim.clock import seconds
from repro.sim.engine import Simulator
from repro.workload.arrivals import ArrivalProcess

#: Port the discard/UDP sink services listen on (RFC 863's number).
DISCARD_PORT = 9


class TrafficGenerator:
    """Base class: fires :meth:`fire` once per arrival until stopped.

    ``duration`` bounds offered load to a window (microseconds from
    :meth:`start`); ``limit`` bounds the total number of arrivals.
    Subclasses implement :meth:`fire` and may extend :meth:`metrics`.
    """

    kind = "traffic"

    def __init__(
        self,
        sim: Simulator,
        arrivals: ArrivalProcess,
        duration: Optional[int] = None,
        limit: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.arrivals = arrivals
        self.duration = duration
        self.limit = limit
        self.name = name or f"{self.kind}"
        self.counters = CounterSet()
        self._deadline: Optional[int] = None
        self._emitted = 0

    def start(self, at: int = 0) -> None:
        """Begin generating ``at`` microseconds from now."""
        if self.duration is not None:
            self._deadline = self.sim.now + at + self.duration
        self.sim.schedule(at + self.arrivals.next_gap(), self._tick,
                          label=f"workload {self.name}")

    def _tick(self) -> None:
        if self._deadline is not None and self.sim.now >= self._deadline:
            return
        if self.limit is not None and self._emitted >= self.limit:
            return
        self._emitted += 1
        self.counters.bump("arrivals")
        self.fire()
        gap = self.arrivals.next_gap()
        if self.limit is not None and self._emitted >= self.limit:
            return
        when = self.sim.now + gap
        if self._deadline is not None and when >= self._deadline:
            return
        self.sim.schedule(gap, self._tick, label=f"workload {self.name}")

    def fire(self) -> None:
        """Emit one unit of traffic."""
        raise NotImplementedError

    def metrics(self) -> Dict[str, float]:
        """Flat name->value summary of what this generator did and saw."""
        return {str(k): float(v) for k, v in self.counters.snapshot().items()}


class UiChatterGenerator(TrafficGenerator):
    """A station sending pre-built AX.25 UI frames (background chatter).

    This is the §3 antagonist: traffic on the channel that is *not* for
    the gateway, which a promiscuous TNC nonetheless pushes up the
    serial line.
    """

    kind = "chatter"

    def __init__(
        self,
        sim: Simulator,
        station: RadioStation,
        frame: bytes,
        arrivals: ArrivalProcess,
        **kwargs,
    ) -> None:
        super().__init__(sim, arrivals, name=f"chatter/{station.name}",
                         **kwargs)
        self.station = station
        self.frame = frame

    def fire(self) -> None:
        if self.station.send_frame(self.frame):
            self.counters.bump("frames_offered")
            self.counters.bump("bytes_offered", len(self.frame))
        else:
            self.counters.bump("frames_dropped_at_queue")


class PingGenerator(TrafficGenerator):
    """A host pinging a destination; measures reachability and RTT."""

    kind = "ping"

    def __init__(
        self,
        sim: Simulator,
        stack: NetStack,
        destination: str,
        arrivals: ArrivalProcess,
        payload_size: int = 56,
        **kwargs,
    ) -> None:
        super().__init__(sim, arrivals, name=f"ping/{stack.hostname}",
                         **kwargs)
        self.pinger = Pinger(stack)
        self.destination = destination
        self.payload_size = payload_size

    def fire(self) -> None:
        self.pinger.send_one(self.destination, self.payload_size)

    def metrics(self) -> Dict[str, float]:
        out = super().metrics()
        out["pings_sent"] = float(self.pinger.sent)
        out["pings_received"] = float(self.pinger.received)
        mean_rtt = self.pinger.mean_rtt_seconds()
        if mean_rtt is not None:
            out["ping_mean_rtt_s"] = mean_rtt
        return out


class UdpSink(UdpSocket):
    """A bound UDP endpoint that just counts what lands on it."""

    def __init__(self, stack: NetStack, port: int = DISCARD_PORT) -> None:
        super().__init__(stack, port)
        self.datagrams = 0
        self.bytes = 0
        self.on_datagram = self._count

    def _count(self, payload: bytes, _source, _port) -> None:
        self.datagrams += 1
        self.bytes += len(payload)
        # Keep the sink O(1) in memory during long soaks.
        self.received.clear()


class UdpBlastGenerator(TrafficGenerator):
    """A host firing UDP datagrams at a sink."""

    kind = "udp"

    def __init__(
        self,
        sim: Simulator,
        stack: NetStack,
        destination: str,
        arrivals: ArrivalProcess,
        payload_bytes: int = 128,
        port: int = DISCARD_PORT,
        **kwargs,
    ) -> None:
        super().__init__(sim, arrivals, name=f"udp/{stack.hostname}",
                         **kwargs)
        self.socket = UdpSocket(stack)
        self.destination = destination
        self.port = port
        self.payload = bytes(payload_bytes)

    def fire(self) -> None:
        if self.socket.sendto(self.payload, self.destination, self.port):
            self.counters.bump("datagrams_sent")
            self.counters.bump("bytes_sent", len(self.payload))
        else:
            self.counters.bump("datagrams_unroutable")


class DiscardServer:
    """A TCP discard service (RFC 863): accepts, drains, counts."""

    def __init__(self, stack: NetStack, port: int = DISCARD_PORT) -> None:
        self.connections = 0
        self.bytes = 0
        self.server = TcpServerSocket(stack, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        self.connections += 1

        def drain(chunk: bytes) -> None:
            self.bytes += len(chunk)
            socket.recv()

        def finish(reason: str) -> None:
            if reason == "peer closed":
                socket.close()

        socket.on_data = drain
        socket.on_close = finish


class TcpTransferGenerator(TrafficGenerator):
    """A host pushing fixed-size transfers over fresh TCP connections.

    Each arrival opens a connection to a :class:`DiscardServer`, sends
    ``transfer_bytes`` and closes; completion is observed through the
    socket close callback, so "transfers_completed" means the FIN
    handshake finished, not merely that bytes were queued.
    """

    kind = "tcp"

    #: Per-connection recovery stats harvested into generator counters
    #: when each transfer's socket closes (tournament observables).
    HARVEST_STATS = ("retransmissions", "fast_retransmits",
                     "dup_acks_received", "timeouts", "pacing_deferrals")

    def __init__(
        self,
        sim: Simulator,
        stack: NetStack,
        destination: str,
        arrivals: ArrivalProcess,
        transfer_bytes: int = 2048,
        port: int = DISCARD_PORT,
        max_in_flight: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(sim, arrivals, name=f"tcp/{stack.hostname}",
                         **kwargs)
        self.stack = stack
        self.destination = destination
        self.port = port
        self.transfer_bytes = transfer_bytes
        self.max_in_flight = max_in_flight
        self._open: List[TcpSocket] = []
        self._latency_total_us = 0

    def fire(self) -> None:
        if len(self._open) >= self.max_in_flight:
            # The link is already saturated with unfinished transfers;
            # offering more would only queue memory, not packets.
            self.counters.bump("transfers_skipped_busy")
            return
        socket = TcpSocket.connect(self.stack, self.destination, self.port)
        self._open.append(socket)
        self.counters.bump("transfers_started")
        started = self.sim.now

        def on_connect() -> None:
            socket.send(bytes(self.transfer_bytes))
            self.counters.bump("bytes_sent", self.transfer_bytes)
            socket.close()

        def on_close(reason: str) -> None:
            if socket in self._open:
                self._open.remove(socket)
            for stat in self.HARVEST_STATS:
                self.counters.bump(f"tcp_{stat}",
                                   socket.connection.stats.get(stat, 0))
            if reason == "closed":
                self.counters.bump("transfers_completed")
                self._latency_total_us += self.sim.now - started
            else:
                self.counters.bump("transfers_failed")

        socket.on_connect = on_connect
        socket.on_close = on_close

    def metrics(self) -> Dict[str, float]:
        out = super().metrics()
        # Transfers still in flight at the end of the run hold recovery
        # state their close callback never harvested; fold it in so the
        # totals cover everything this generator offered.
        for socket in self._open:
            for stat in self.HARVEST_STATS:
                key = f"tcp_{stat}"
                out[key] = (out.get(key, 0.0)
                            + float(socket.connection.stats.get(stat, 0)))
        completed = self.counters.snapshot().get("transfers_completed", 0)
        if completed:
            out["tcp_transfer_mean_latency_s"] = (
                self._latency_total_us / completed / float(seconds(1)))
        return out


class BbsTerminalGenerator(TrafficGenerator):
    """A terminal user running W0RLI-style BBS sessions over AX.25.

    Each arrival starts one scripted session -- connect, list, read,
    bye -- with think times drawn from ``rng``; a new session is
    skipped while the previous one is still on the air (one human, one
    terminal).  This models the paper's pre-IP population: pure level-2
    AX.25 users sharing the channel with the gateway's IP traffic.
    """

    kind = "bbs"

    SESSION_LINES = ("L", "R 1", "B")

    def __init__(
        self,
        sim: Simulator,
        terminal,
        bbs_callsign: str,
        arrivals: ArrivalProcess,
        rng: random.Random,
        **kwargs,
    ) -> None:
        super().__init__(sim, arrivals,
                         name=f"bbs/{terminal.callsign}", **kwargs)
        self.terminal = terminal
        self.bbs_callsign = bbs_callsign
        self.rng = rng
        self._in_session = False

    def _think(self) -> int:
        return seconds(self.rng.uniform(4.0, 12.0))

    def fire(self) -> None:
        if self._in_session:
            self.counters.bump("sessions_skipped_busy")
            return
        self._in_session = True
        self.counters.bump("sessions_started")
        at = self._think()
        self.terminal.type_line(f"connect {self.bbs_callsign}")
        self.counters.bump("lines_typed")
        for line in self.SESSION_LINES:
            self.sim.schedule(at, self._type, line)
            at += self._think()
        self.sim.schedule(at, self._end_session)

    def _type(self, line: str) -> None:
        self.terminal.type_line(line)
        self.counters.bump("lines_typed")

    def _end_session(self) -> None:
        self._in_session = False
        self.counters.bump("sessions_completed")

    def metrics(self) -> Dict[str, float]:
        out = super().metrics()
        out["screen_bytes"] = float(len(self.terminal.screen))
        return out
