"""Interarrival-time processes for traffic generation.

An :class:`ArrivalProcess` answers one question -- "how long until the
next arrival?" -- in integer microseconds, drawing any randomness from
a ``random.Random`` handed in by the caller (always a named stream from
:class:`~repro.sim.rand.RandomStreams`, never the global module, so the
offered load is part of the seeded universe).

The processes cover the classic traffic shapes:

* :class:`PoissonArrivals` -- memoryless, the textbook offered-load model;
* :class:`OnOffArrivals` -- bursty Markov-modulated on/off (talk-spurts
  on a voice channel, a user typing then thinking);
* :class:`ParetoArrivals` -- heavy-tailed interarrivals (self-similar
  LAN traffic, long silences punctuated by clumps);
* :class:`FixedArrivals` -- deterministic period, for calibration;
* :class:`BurstArrivals` -- everything at once, the worst-case
  contention burst the A3 ablation keys on.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sim.clock import SECOND, seconds


class ArrivalProcess:
    """Base class: a stream of interarrival gaps in microseconds."""

    def next_gap(self) -> int:
        """Microseconds from the previous arrival to the next one."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable parameterisation."""
        return type(self).__name__


class FixedArrivals(ArrivalProcess):
    """Deterministic arrivals every ``interval`` microseconds."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = int(interval)

    def next_gap(self) -> int:
        return self.interval

    def describe(self) -> str:
        return f"fixed({self.interval / SECOND:.3f}s)"


class BurstArrivals(ArrivalProcess):
    """All arrivals at the same instant (gap 0): a synchronized burst.

    After ``count`` arrivals (when given) the process goes silent for
    good, so a schedule of a bounded burst terminates on its own.
    """

    #: Gap used once a bounded burst is exhausted: ~31 simulated years.
    SILENT = 10**15

    def __init__(self, count: Optional[int] = None) -> None:
        if count is not None and count <= 0:
            raise ValueError("count must be positive")
        self.count = count
        self._emitted = 0

    def next_gap(self) -> int:
        if self.count is not None and self._emitted >= self.count:
            return self.SILENT
        self._emitted += 1
        return 0

    def describe(self) -> str:
        suffix = "" if self.count is None else f"x{self.count}"
        return f"burst{suffix}"


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrivals at ``rate_per_second`` (a Poisson process)."""

    def __init__(self, rng: random.Random, rate_per_second: float) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rng = rng
        self.rate = rate_per_second

    def next_gap(self) -> int:
        return max(1, seconds(self.rng.expovariate(self.rate)))

    def describe(self) -> str:
        return f"poisson({self.rate:.3g}/s)"


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated on/off bursts.

    While ON, arrivals are Poisson at ``on_rate_per_second``; the ON
    dwell is exponential with mean ``mean_on_seconds``, then the source
    goes silent for an exponential OFF dwell with mean
    ``mean_off_seconds``.  Long-run mean rate is
    ``on_rate * on / (on + off)``.
    """

    def __init__(
        self,
        rng: random.Random,
        on_rate_per_second: float,
        mean_on_seconds: float = 10.0,
        mean_off_seconds: float = 30.0,
    ) -> None:
        if on_rate_per_second <= 0:
            raise ValueError("on rate must be positive")
        if mean_on_seconds <= 0 or mean_off_seconds < 0:
            raise ValueError("dwell times must be positive")
        self.rng = rng
        self.on_rate = on_rate_per_second
        self.mean_on = mean_on_seconds
        self.mean_off = mean_off_seconds
        # Time left in the current ON period, microseconds.
        self._on_remaining = seconds(rng.expovariate(1.0 / mean_on_seconds))

    def next_gap(self) -> int:
        gap = 0
        while True:
            step = seconds(self.rng.expovariate(self.on_rate))
            if step <= self._on_remaining:
                self._on_remaining -= step
                return max(1, gap + step)
            # The ON period ends before the next arrival: burn the rest
            # of it, sleep through an OFF dwell, start a fresh ON period.
            gap += self._on_remaining
            if self.mean_off > 0:
                gap += seconds(self.rng.expovariate(1.0 / self.mean_off))
            self._on_remaining = seconds(
                self.rng.expovariate(1.0 / self.mean_on)
            )

    def describe(self) -> str:
        return (f"onoff({self.on_rate:.3g}/s on, "
                f"{self.mean_on:.3g}s/{self.mean_off:.3g}s)")


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed (Pareto) interarrivals with a target mean gap.

    ``shape`` (alpha) must exceed 1 so the mean exists; the classic
    self-similar-traffic regime is 1 < alpha < 2, where the variance is
    infinite and arrivals clump at every timescale.
    """

    def __init__(
        self,
        rng: random.Random,
        mean_gap_seconds: float,
        shape: float = 1.5,
    ) -> None:
        if shape <= 1:
            raise ValueError("shape must be > 1 for a finite mean")
        if mean_gap_seconds <= 0:
            raise ValueError("mean gap must be positive")
        self.rng = rng
        self.shape = shape
        # Scale xm chosen so E[X] = xm * alpha / (alpha - 1) == mean.
        self.scale_seconds = mean_gap_seconds * (shape - 1) / shape

    def next_gap(self) -> int:
        return max(1, seconds(self.rng.paretovariate(self.shape)
                              * self.scale_seconds))

    def describe(self) -> str:
        return f"pareto(a={self.shape:.3g}, xm={self.scale_seconds:.3g}s)"


def make_arrivals(
    kind: str,
    rng: random.Random,
    rate_per_minute: float,
) -> ArrivalProcess:
    """Build a process by name with a common mean-rate parameterisation.

    ``kind`` is one of ``poisson``, ``onoff``, ``pareto``, ``fixed``,
    ``burst``.  For every kind but ``burst`` the long-run mean rate is
    ``rate_per_minute`` arrivals per minute, so scenario specs can swap
    traffic shapes without changing offered load.
    """
    if kind == "burst":
        return BurstArrivals()
    if rate_per_minute <= 0:
        raise ValueError("rate_per_minute must be positive")
    rate = rate_per_minute / 60.0
    if kind == "poisson":
        return PoissonArrivals(rng, rate)
    if kind == "fixed":
        return FixedArrivals(seconds(1.0 / rate))
    if kind == "onoff":
        # ON a third of the time; triple the ON rate keeps the mean.
        return OnOffArrivals(rng, 3.0 * rate,
                             mean_on_seconds=10.0, mean_off_seconds=20.0)
    if kind == "pareto":
        return ParetoArrivals(rng, mean_gap_seconds=1.0 / rate)
    raise ValueError(f"unknown arrival kind {kind!r}")


def arrival_schedule(
    process: ArrivalProcess,
    duration: int,
    start: int = 0,
    limit: Optional[int] = None,
) -> List[int]:
    """Materialise absolute arrival times in ``[start, start + duration)``.

    Useful for tests (the determinism guarantee is "same seed, same
    schedule") and for pre-computing offered load without a simulator.
    """
    times: List[int] = []
    now = start
    while True:
        now += process.next_gap()
        if now >= start + duration:
            return times
        times.append(now)
        if limit is not None and len(times) >= limit:
            return times
