"""Declarative workload scenarios over the canonical testbeds.

A :class:`Scenario` is a value object: topology name, station count,
generator mix, duration, seed.  :func:`build_scenario` turns it into a
live simulation -- it builds the named testbed from
:mod:`repro.core.topology`, synthesizes the station population, wires
one traffic generator per station according to the mix, and parks
sinks (UDP sink, TCP discard, a BBS for terminal users) on the far
side.  :func:`run_scenario` runs it and returns a flat metrics dict.

Populations are mixed on purpose: the paper's channel carried IP users
(KA9Q PCs), legacy AX.25 chatter, and terminal users on BBSs all at
once, and the §3 slowdown only shows up when the traffic that is *not*
for you shares the frequency with the traffic that is.

Same seed, same scenario => identical offered load and identical
end-of-run metrics; the experiment harness leans on this when it fans
seeds across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.apps.bbs import BulletinBoard
from repro.ax25.address import AX25Address
from repro.ax25.defs import PID_NO_L3
from repro.ax25.frames import AX25Frame
from repro.ax25.lapb import AdaptiveLinkTimer, FixedLinkTimer
from repro.core.hosts import TerminalStation
from repro.core.topology import (
    build_figure1_testbed,
    build_gateway_testbed,
    synthesize_stations,
)
from repro.faults import FaultInjector, FaultPlan
from repro.inet.tcp import AdaptiveRto, FixedRto, NoCongestion, PacedRate, Reno
from repro.obs.spans import FlightRecorder
from repro.obs.timeseries import TimeSeries
from repro.radio.modem import ModemProfile
from repro.radio.station import RadioStation
from repro.scale.fidelity import validate_line_fidelity
from repro.scale.flow import FlowStationCloud
from repro.sim.clock import seconds
from repro.sim.sanitizer import OrderShuffleSimulator, SimSanitizer
from repro.workload.arrivals import make_arrivals
from repro.workload.generators import (
    BbsTerminalGenerator,
    DiscardServer,
    PingGenerator,
    TcpTransferGenerator,
    TrafficGenerator,
    UdpBlastGenerator,
    UdpSink,
    UiChatterGenerator,
)

#: Topology names accepted by :class:`Scenario`.
TOPOLOGIES = ("gateway", "figure1")

#: Generator kinds accepted in a :class:`GeneratorMix`.
GENERATOR_KINDS = ("ping", "udp", "tcp", "chatter", "bbs")

#: Recovery-policy names accepted by :class:`Scenario` (the tournament
#: axes).  Each maps to a zero-argument factory; the factories are
#: installed as the per-stack defaults so every connection a scenario
#: opens -- including server-side spawns -- runs the named policy.
TCP_RTO_POLICIES = {"fixed": FixedRto, "adaptive": AdaptiveRto}
TCP_CC_POLICIES = {"none": NoCongestion, "reno": Reno, "paced": PacedRate}
LAPB_TIMER_POLICIES = {"fixed": FixedLinkTimer, "adaptive": AdaptiveLinkTimer}


@dataclass(frozen=True)
class GeneratorMix:
    """One component of a traffic mix.

    ``fraction`` is the share of the station population running this
    generator; fractions are normalised over the whole mix, so
    ``(GeneratorMix("ping", 1), GeneratorMix("chatter", 3))`` puts a
    quarter of the stations on ping and the rest on chatter.
    """

    kind: str
    fraction: float = 1.0
    arrivals: str = "poisson"
    rate_per_minute: float = 6.0
    payload_bytes: int = 64

    def __post_init__(self) -> None:
        if self.kind not in GENERATOR_KINDS:
            raise ValueError(f"unknown generator kind {self.kind!r}")
        if self.fraction <= 0:
            raise ValueError("fraction must be positive")


@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible workload description."""

    name: str = "scenario"
    topology: str = "gateway"
    stations: int = 10
    duration_seconds: float = 300.0
    mix: Tuple[GeneratorMix, ...] = (GeneratorMix("ping"),)
    seed: int = 0
    bit_rate: int = 1200
    serial_baud: int = 9600
    tnc_address_filter: bool = False
    #: Chaos extensions: a declarative fault schedule, the driver
    #: watchdog, and the graceful-degradation shed threshold.  All off
    #: by default so existing scenarios keep their metric sets.
    fault_plan: Optional[FaultPlan] = None
    watchdog: bool = False
    shed_threshold_bytes: Optional[int] = None
    #: Attach a packet flight recorder (repro.obs) to the shared tracer;
    #: adds ``obs_*`` span-conservation and latency metrics to results.
    observe: bool = False
    #: Cadence (simulated seconds) of the TimeSeries instrument
    #: snapshots taken when ``observe`` is on.  Only snapshot counts
    #: enter the metric dict; the sampled values feed ``report
    #: --timeline``.
    snapshot_cadence_seconds: float = 10.0
    #: Attach the runtime SimSanitizer (repro.sim.sanitizer): live span
    #: conservation checks plus a stale-span census at the end of the
    #: run.  Implies a flight recorder; adds ``sanitizer_*`` metrics.
    sanitize: bool = False
    #: Run on an OrderShuffleSimulator with this salt: equal-timestamp
    #: events registered in different instants are reordered by a salted
    #: hash instead of FIFO.  Order-independent models produce identical
    #: metrics (minus event-queue bookkeeping) for every salt.
    order_salt: Optional[int] = None
    #: Serial delivery granularity for every host: ``"per_char"`` (the
    #: byte-faithful default) or ``"frame"`` (one event per KISS record;
    #: digest-equal on fault-free lines -- see :mod:`repro.scale`).
    fidelity: str = "per_char"
    #: Flow-level background stations: an analytic
    #: :class:`~repro.scale.flow.FlowStationCloud` sharing the channel,
    #: offering ``flow_rate_per_minute`` frames per station per minute.
    flow_stations: int = 0
    flow_rate_per_minute: float = 0.5
    #: Partition the world into this many regions and run it through the
    #: sharded runner (:mod:`repro.scale.shard`).  ``regions > 1`` is
    #: handled by :func:`run_scenario` (ping-only mixes) and is not
    #: buildable as a single in-process testbed.
    regions: int = 1
    #: Recovery policies (the tournament axes): RTO estimation and
    #: congestion control for every TCP endpoint in the scenario, and
    #: the T1 timer policy for every LAPB link (BBS + terminal TNCs).
    #: Defaults match the pre-tournament behaviour of the testbeds.
    tcp_rto: str = "adaptive"
    tcp_cc: str = "reno"
    lapb_timer: str = "fixed"

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.tcp_rto not in TCP_RTO_POLICIES:
            raise ValueError(f"unknown tcp_rto policy {self.tcp_rto!r}")
        if self.tcp_cc not in TCP_CC_POLICIES:
            raise ValueError(f"unknown tcp_cc policy {self.tcp_cc!r}")
        if self.lapb_timer not in LAPB_TIMER_POLICIES:
            raise ValueError(f"unknown lapb_timer policy {self.lapb_timer!r}")
        if self.stations < 1:
            raise ValueError("a scenario needs at least one station")
        if not self.mix:
            raise ValueError("a scenario needs a non-empty mix")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.flow_stations < 0:
            raise ValueError("flow_stations must be non-negative")
        if self.regions < 1:
            raise ValueError("regions must be at least 1")
        if self.snapshot_cadence_seconds <= 0:
            raise ValueError("snapshot cadence must be positive")
        validate_line_fidelity(self.fidelity)

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario in a different seeded universe."""
        return replace(self, seed=seed)

    def station_allocation(self) -> List[GeneratorMix]:
        """Which mix component each of the N stations runs.

        Largest-remainder allocation over normalised fractions; always
        sums to exactly ``stations`` and is a pure function of the spec.
        """
        total = sum(component.fraction for component in self.mix)
        exact = [self.stations * c.fraction / total for c in self.mix]
        counts = [int(value) for value in exact]
        remainders = sorted(
            range(len(self.mix)),
            key=lambda i: (exact[i] - counts[i], -i),
            reverse=True,
        )
        for i in range(self.stations - sum(counts)):
            counts[remainders[i % len(self.mix)]] += 1
        allocation: List[GeneratorMix] = []
        for component, count in zip(self.mix, counts):
            allocation.extend([component] * count)
        return allocation


@dataclass
class ScenarioRun:
    """A built (but not yet run) scenario: live testbed + generators."""

    scenario: Scenario
    testbed: object
    target_ip: str
    generators: List[TrafficGenerator]
    udp_sink: Optional[UdpSink] = None
    discard: Optional[DiscardServer] = None
    bbs: Optional[BulletinBoard] = None
    extra_stations: List[object] = field(default_factory=list)
    injector: Optional[FaultInjector] = None
    watchdog: Optional[object] = None  # TncWatchdog when enabled
    recorder: Optional[object] = None  # FlightRecorder when observe=True
    sanitizer: Optional[SimSanitizer] = None  # when sanitize=True
    flow_cloud: Optional[FlowStationCloud] = None  # when flow_stations>0
    timeseries: Optional[TimeSeries] = None  # when observe=True

    @property
    def sim(self):
        """The simulator of the underlying testbed."""
        return self.testbed.sim

    def run(self) -> Dict[str, float]:
        """Run for the scenario's duration and return the metrics."""
        for generator in self.generators:
            generator.start()
        if self.flow_cloud is not None:
            self.flow_cloud.start()
        self.sim.run(until=self.sim.now
                     + seconds(self.scenario.duration_seconds))
        return self.results()

    def results(self) -> Dict[str, float]:
        """Aggregate generator, sink and channel metrics, flat."""
        out: Dict[str, float] = {}
        rtts: List[float] = []
        latencies: List[float] = []
        for generator in self.generators:
            for key, value in generator.metrics().items():
                if key == "ping_mean_rtt_s":
                    rtts.append(value)  # means do not sum
                elif key == "tcp_transfer_mean_latency_s":
                    latencies.append(value)
                else:
                    out[key] = out.get(key, 0.0) + value
        if rtts:
            out["ping_mean_rtt_s"] = sum(rtts) / len(rtts)
        if latencies:
            out["tcp_transfer_mean_latency_s"] = (
                sum(latencies) / len(latencies))
        if self.udp_sink is not None:
            out["udp_sink_datagrams"] = float(self.udp_sink.datagrams)
            out["udp_sink_bytes"] = float(self.udp_sink.bytes)
        if self.discard is not None:
            out["tcp_sink_connections"] = float(self.discard.connections)
            out["tcp_sink_bytes"] = float(self.discard.bytes)
        if self.flow_cloud is not None:
            out.update(self.flow_cloud.metrics())
        channel = self.testbed.channel
        out["channel_transmissions"] = float(channel.total_transmissions)
        out["channel_collisions"] = float(channel.total_collisions)
        out["channel_utilisation"] = float(channel.utilisation())
        gateway = getattr(self.testbed, "gateway", None)
        if gateway is not None:
            out["gateway_ip_forwarded"] = float(
                gateway.stack.counters["ip_forwarded"])
            # The §3 observables: what the promiscuous TNC costs the
            # host side (and what the proposed filter saves).
            out["gateway_serial_bytes_to_host"] = float(
                gateway.radio.serial.b.bytes_sent)
            out["gateway_tnc_frames_to_host"] = float(
                gateway.radio.tnc.frames_to_host)
            out["gateway_tnc_frames_filtered"] = float(
                gateway.radio.tnc.frames_filtered)
            out["gateway_driver_discards"] = float(
                gateway.radio_interface.frames_not_for_us)
        # Chaos metrics only exist when chaos was asked for, so the
        # metric sets of pre-existing scenarios are unchanged.
        if self.injector is not None:
            out["faults_injected"] = float(self.injector.faults_injected)
            out["faults_cleared"] = float(self.injector.faults_cleared)
            out["fault_bytes_corrupted"] = float(self.injector.bytes_corrupted)
            out["fault_bytes_dropped"] = float(self.injector.bytes_dropped)
            out["fault_garbage_bytes"] = float(self.injector.garbage_bytes)
            out["channel_frames_faded"] = float(channel.frames_faded)
        if self.watchdog is not None:
            out["watchdog_resets_issued"] = float(self.watchdog.resets_issued)
            out["watchdog_recoveries"] = float(self.watchdog.recoveries)
            out["watchdog_last_recovery_s"] = (
                self.watchdog.last_recovery_us / float(seconds(1)))
        if gateway is not None and (self.injector is not None
                                    or self.watchdog is not None):
            out["gateway_tnc_resets"] = float(gateway.radio.tnc.resets)
            out["gateway_tnc_wedged_drops"] = float(
                gateway.radio.tnc.wedged_drops)
            out["gateway_driver_sheds"] = float(
                gateway.radio_interface.osheds)
            out["gateway_raw_overflow_drops"] = float(
                gateway.radio_interface.raw_overflow_drops)
            out["gateway_serial_rx_faulted"] = float(
                gateway.radio.serial.a.rx_faulted)
            out["gateway_ip_input_drops"] = float(
                gateway.stack.counters["ip_input_drops"])
            out["gateway_if_snd_drops"] = float(
                gateway.stack.counters["if_snd_drops"])
        # Span/instrument metrics only exist when observe=True, so the
        # metric sets of pre-existing scenarios are unchanged.
        if self.recorder is not None:
            for key, value in self.recorder.finalize_metrics().items():
                out[f"obs_{key}"] = float(value)
        if self.timeseries is not None:
            for key, value in self.timeseries.metrics().items():
                out[f"obs_{key}"] = float(value)
        if self.sanitizer is not None:
            out.update(self.sanitizer.finalize_metrics())
        out["events_executed"] = float(self.sim.events_executed)
        return out


def build_scenario(scenario: Scenario) -> ScenarioRun:
    """Materialise a :class:`Scenario` into a live simulation."""
    if scenario.regions > 1:
        raise ValueError(
            "regional scenarios are not buildable in-process; "
            "run_scenario() hands them to repro.scale.shard.run_sharded")
    modem = ModemProfile(bit_rate=scenario.bit_rate)
    engine = (OrderShuffleSimulator(scenario.order_salt)
              if scenario.order_salt is not None else None)
    if scenario.topology == "gateway":
        testbed = build_gateway_testbed(
            seed=scenario.seed, bit_rate=scenario.bit_rate,
            serial_baud=scenario.serial_baud,
            tnc_address_filter=scenario.tnc_address_filter,
            sim=engine,
            fidelity=scenario.fidelity,
        )
        target_stack = testbed.ether_host
        target_ip = testbed.ETHER_HOST_IP
        default_gateway: Optional[str] = testbed.GATEWAY_RADIO_IP
    else:  # figure1
        testbed = build_figure1_testbed(
            seed=scenario.seed, bit_rate=scenario.bit_rate,
            serial_baud=scenario.serial_baud,
            sim=engine,
            fidelity=scenario.fidelity,
        )
        target_stack = testbed.peer.stack
        target_ip = "44.24.0.5"
        default_gateway = None

    sim = testbed.sim
    streams = testbed.streams
    allocation = scenario.station_allocation()
    run = ScenarioRun(scenario=scenario, testbed=testbed,
                      target_ip=target_ip, generators=[])

    ip_kinds = [m for m in allocation if m.kind in ("ping", "udp", "tcp")]
    hosts = synthesize_stations(
        sim, testbed.channel, len(ip_kinds), tracer=testbed.tracer,
        modem=modem, serial_baud=scenario.serial_baud,
        default_gateway=default_gateway,
        fidelity=scenario.fidelity,
    )
    # Install the scenario's recovery policies as the per-stack defaults
    # before any generator opens a connection.  Listeners resolve their
    # factories lazily, so server-side spawns pick these up too.
    rto_factory = TCP_RTO_POLICIES[scenario.tcp_rto]
    cc_factory = TCP_CC_POLICIES[scenario.tcp_cc]
    lapb_timer_factory = LAPB_TIMER_POLICIES[scenario.lapb_timer]
    gateway_host = getattr(testbed, "gateway", None)
    if gateway_host is not None:
        stacks = [gateway_host.stack, testbed.ether_host, testbed.pc.stack]
    else:
        stacks = [testbed.host.stack, testbed.peer.stack]
    for stack in stacks + [host.stack for host in hosts]:
        stack.tcp.default_rto_factory = rto_factory
        stack.tcp.default_cc_factory = cc_factory
    if scenario.flow_stations > 0:
        run.flow_cloud = FlowStationCloud(
            sim, testbed.channel, streams,
            stations=scenario.flow_stations,
            rate_per_minute=scenario.flow_rate_per_minute,
            modem=modem, duration=seconds(scenario.duration_seconds),
        )
    if any(m.kind == "udp" for m in allocation):
        run.udp_sink = UdpSink(target_stack)
    if any(m.kind == "tcp" for m in allocation):
        run.discard = DiscardServer(target_stack)
    if any(m.kind == "bbs" for m in allocation):
        run.bbs = BulletinBoard(sim, testbed.channel, "W0RLI",
                                tracer=testbed.tracer,
                                timer_policy=lapb_timer_factory)

    duration = seconds(scenario.duration_seconds)
    host_iter = iter(hosts)
    # Chatter stations ragchew in pairs (CH2 -> CH5, CH5 -> CH2, ...):
    # third-party traffic the gateway's TNC hears but that is not for
    # it -- exactly the load §3 says swamps the promiscuous firmware.
    # (Broadcast QST frames would legitimately pass the §3 filter.)
    chatter_indices = [i for i, c in enumerate(allocation)
                       if c.kind == "chatter"]
    chatter_peer_of = {}
    for position, index in enumerate(chatter_indices):
        partner = position + 1 if position % 2 == 0 else position - 1
        if partner >= len(chatter_indices):
            partner = 0 if len(chatter_indices) > 1 else position
        chatter_peer_of[index] = f"CH{chatter_indices[partner]}"
    for index, component in enumerate(allocation):
        rng = streams.stream(f"workload/{component.kind}/{index}")
        arrivals = make_arrivals(component.arrivals, rng,
                                 component.rate_per_minute)
        generator: TrafficGenerator
        if component.kind in ("ping", "udp", "tcp"):
            host = next(host_iter)
            if component.kind == "ping":
                generator = PingGenerator(
                    sim, host.stack, target_ip, arrivals,
                    payload_size=component.payload_bytes, duration=duration,
                )
            elif component.kind == "udp":
                generator = UdpBlastGenerator(
                    sim, host.stack, target_ip, arrivals,
                    payload_bytes=component.payload_bytes, duration=duration,
                )
            else:
                generator = TcpTransferGenerator(
                    sim, host.stack, target_ip, arrivals,
                    transfer_bytes=max(256, component.payload_bytes),
                    duration=duration,
                )
        elif component.kind == "chatter":
            callsign = f"CH{index}"
            station = RadioStation(sim, testbed.channel, callsign,
                                   modem=modem)
            frame = AX25Frame.ui(
                AX25Address.parse(chatter_peer_of[index]),
                AX25Address.parse(callsign), PID_NO_L3,
                b"\x2a" * component.payload_bytes,
            ).encode()
            generator = UiChatterGenerator(sim, station, frame, arrivals,
                                           duration=duration)
            run.extra_stations.append(station)
        else:  # bbs
            terminal = TerminalStation(sim, testbed.channel, f"KT{index}",
                                       tracer=testbed.tracer,
                                       timer_policy=lapb_timer_factory)
            generator = BbsTerminalGenerator(
                sim, terminal, "W0RLI", arrivals,
                rng=streams.stream(f"workload/bbs-think/{index}"),
                duration=duration,
            )
            run.extra_stations.append(terminal)
        run.generators.append(generator)

    # -- chaos wiring ---------------------------------------------------
    # "gateway" always names the hub host (the MicroVAX in either
    # topology); synthesized stations are addressed by callsign.
    primary = gateway_host.radio if gateway_host is not None else testbed.host.radio
    if scenario.observe or scenario.sanitize:
        recorder = FlightRecorder(testbed.tracer)
        run.recorder = recorder
        # Sample the host->TNC serial backlog (the §4.1 choke point)
        # whenever the hub's driver writes to the line.
        backlog_gauge = recorder.instruments.gauge("gateway_serial_backlog")
        primary.serial.a.on_backlog_sample = backlog_gauge.sample
        if scenario.observe:
            run.timeseries = TimeSeries(
                sim, recorder.summary,
                cadence=seconds(scenario.snapshot_cadence_seconds))
            run.timeseries.start()
        if scenario.sanitize:
            run.sanitizer = SimSanitizer(sim, recorder)
            run.sanitizer.start()
    if scenario.shed_threshold_bytes is not None:
        primary.interface.shed_threshold_bytes = scenario.shed_threshold_bytes
    if scenario.watchdog:
        run.watchdog = primary.interface.start_watchdog(streams)
    if scenario.fault_plan is not None:
        attachments = {"gateway": primary}
        interfaces = {"gateway": primary.interface}
        for host in hosts:
            attachments[str(host.callsign)] = host.radio
            interfaces[str(host.callsign)] = host.interface
        run.injector = FaultInjector(sim, streams, tracer=testbed.tracer)
        run.injector.install(scenario.fault_plan, channel=testbed.channel,
                             attachments=attachments, interfaces=interfaces)
    return run


def run_scenario(scenario: Scenario) -> Dict[str, float]:
    """Build and run a scenario; the one-call entry point.

    ``regions > 1`` scenarios are handed to the sharded regional runner
    (one simulator per region, conservative windowed sync); everything
    else builds the usual single-simulator testbed.
    """
    if scenario.regions > 1:
        # Imported lazily: repro.scale.regions depends on the workload
        # generators, so a module-level import would be circular.
        from repro.scale.regions import layout_from_scenario
        from repro.scale.shard import run_sharded
        return run_sharded(layout_from_scenario(scenario))
    return build_scenario(scenario).run()
