"""Workload generation: seeded traffic models and declarative scenarios.

The paper's performance discussion (§3 channel load, §4.1 retransmission
storms, §4.2 regional gateways) is all about behaviour *under offered
load*.  This package provides the load: composable arrival processes
(:mod:`repro.workload.arrivals`), traffic generators that drive the
existing stack through its public interfaces
(:mod:`repro.workload.generators`), and a declarative
:class:`~repro.workload.scenario.Scenario` spec that synthesizes
N-station populations on any canonical testbed
(:mod:`repro.workload.scenario`).

Everything draws randomness from the testbed's named
:class:`~repro.sim.rand.RandomStreams`, so a seed fully determines the
offered load, byte for byte -- the property the experiment harness
(:mod:`repro.harness`) relies on when it fans seeds across worker
processes.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    FixedArrivals,
    OnOffArrivals,
    ParetoArrivals,
    PoissonArrivals,
    arrival_schedule,
    make_arrivals,
)
from repro.workload.generators import (
    BbsTerminalGenerator,
    DiscardServer,
    PingGenerator,
    TcpTransferGenerator,
    TrafficGenerator,
    UdpBlastGenerator,
    UdpSink,
    UiChatterGenerator,
)
from repro.workload.scenario import (
    GeneratorMix,
    Scenario,
    ScenarioRun,
    build_scenario,
    run_scenario,
)

__all__ = [
    "ArrivalProcess",
    "BurstArrivals",
    "FixedArrivals",
    "OnOffArrivals",
    "ParetoArrivals",
    "PoissonArrivals",
    "arrival_schedule",
    "make_arrivals",
    "BbsTerminalGenerator",
    "DiscardServer",
    "PingGenerator",
    "TcpTransferGenerator",
    "TrafficGenerator",
    "UdpBlastGenerator",
    "UdpSink",
    "UiChatterGenerator",
    "GeneratorMix",
    "Scenario",
    "ScenarioRun",
    "build_scenario",
    "run_scenario",
]
