"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector owns no policy -- it walks the plan and schedules each
spec against the component hooks the subsystem layers expose
(``SerialEndpoint.rx_fault``, ``KissTnc.wedge/reboot``,
``RadioChannel.fade_probability/blocked_pairs``,
``NetworkInterface.if_ioctl``).  Every random decision comes from a
stream named after the fault and its target (``fault/serial/<name>``,
``fault/garbage/<name>``; the channel draws fades from
``fault/fade/<port>`` itself), so injecting faults never perturbs the
RNG sequence of healthy components and metrics stay a pure function of
(plan, seed).

Two design rules matter here beyond the fault semantics themselves:

* **No closures in live state.**  Everything the injector installs on a
  component or schedules on the simulator is a bound method, a
  :func:`functools.partial` over bound methods, or a small callable
  object (:class:`LineNoiseFilter`).  A lambda or nested ``def`` caught
  in an event queue or an ``rx_fault`` slot deepcopies by *reference*,
  so a model-checker snapshot restored from it would silently mutate
  the original world (SNAP001 in reprolint guards this repo-wide).
* **Nondeterminism is interceptable.**  When a :class:`ChoiceOracle` is
  installed, the coarse binary fault decisions (apply a fade or skip
  it, wedge now or later) become enumerable :class:`ChoicePoint` draws
  instead of RNG draws, which is how :mod:`repro.check` explores every
  fault schedule instead of sampling one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.faults.plan import FaultPlan, FaultSpec
from repro.netif.ifnet import NetworkInterface
from repro.radio.channel import RadioChannel
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer


@dataclass
class ChoicePoint:
    """One resolved nondeterministic decision.

    ``arms`` is how many alternatives existed; ``chosen`` is the arm
    taken.  A sequence of these is a complete, replayable schedule of
    every decision a run made.
    """

    name: str
    arms: int
    chosen: int


class ChoiceOracle:
    """Resolves nondeterministic choices from a script, recording all.

    The model checker's enumeration engine: components ask
    :meth:`choose` at each decision; scripted positions replay the
    given arm, unscripted positions default to arm 0 and are recorded
    in :attr:`trace` so the explorer can enumerate the siblings.

    The oracle deliberately holds only plain data (lists of ints and
    :class:`ChoicePoint` records), so it rides along with a deepcopy
    snapshot of whatever world owns it.
    """

    def __init__(self) -> None:
        self.script: List[int] = []
        self.trace: List[ChoicePoint] = []
        self._cursor = 0

    def begin(self, script: Sequence[int] = ()) -> None:
        """Reset for one transition, replaying ``script`` as a prefix."""
        self.script = list(script)
        self.trace = []
        self._cursor = 0

    def choose(self, name: str, arms: int) -> int:
        """Resolve one decision with ``arms`` alternatives."""
        if arms <= 1:
            return 0
        if self._cursor < len(self.script):
            chosen = self.script[self._cursor]
            if not 0 <= chosen < arms:
                raise ValueError(
                    f"scripted arm {chosen} out of range for {name!r} ({arms} arms)")
        else:
            chosen = 0
        self._cursor += 1
        self.trace.append(ChoicePoint(name, arms, chosen))
        return chosen

    @property
    def choices_taken(self) -> List[int]:
        """The arm sequence this transition actually took."""
        return [point.chosen for point in self.trace]


@dataclass
class LineNoiseFilter:
    """The serial RX fault filter, as a snapshot-safe callable object.

    Installed on ``SerialEndpoint.rx_fault``; a deepcopy of the
    endpoint carries a deepcopy of this filter (injector and RNG
    rebound through the memo), unlike a closure which would keep
    pointing at the original world.
    """

    injector: "FaultInjector"
    spec: FaultSpec
    rng: object
    drop: bool

    def __call__(self, byte: int) -> Optional[int]:
        if self.rng.random() >= self.spec.probability:
            return byte
        if self.drop:
            self.injector.bytes_dropped += 1
            return None
        self.injector.bytes_corrupted += 1
        return byte ^ (1 << int(self.rng.random() * 8))


@dataclass
class _Partition:
    """Undoable partition bookkeeping (both directions of one pair)."""

    channel: RadioChannel
    pairs: tuple

    def apply(self) -> None:
        for pair in self.pairs:
            self.channel.blocked_pairs.add(pair)

    def undo(self) -> None:
        for pair in self.pairs:
            self.channel.blocked_pairs.discard(pair)


class FaultInjector:
    """Schedules a plan's faults against live components."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.streams = streams
        self.tracer = tracer
        #: When set, coarse fault decisions are drawn from this oracle
        #: instead of being applied unconditionally -- the model
        #: checker's hook (see :meth:`choice`).
        self.oracle: Optional[ChoiceOracle] = None

        # accounting (all deterministic given the plan + seed)
        self.faults_injected = 0
        self.faults_cleared = 0
        self.bytes_corrupted = 0
        self.bytes_dropped = 0
        self.garbage_bytes = 0

    def choice(self, name: str, arms: int) -> int:
        """One enumerable decision: oracle-driven when installed, else arm 0.

        Without an oracle the injector is fully deterministic (the plan
        says what happens; arm 0 is "apply as scheduled"), so chaos-run
        metrics stay a pure function of (plan, seed).
        """
        if self.oracle is None:
            return 0
        return self.oracle.choose(name, arms)

    def install(
        self,
        plan: FaultPlan,
        channel: Optional[RadioChannel] = None,
        attachments: Optional[Mapping[str, object]] = None,
        interfaces: Optional[Mapping[str, NetworkInterface]] = None,
    ) -> None:
        """Validate ``plan`` and schedule every spec.

        ``attachments`` maps target names to
        :class:`~repro.core.hosts.RadioAttachment` bundles (serial/TNC
        faults); ``channel`` serves fades and partitions;
        ``interfaces`` serves flaps.  Missing a needed map raises
        immediately, at install time, not mid-run.
        """
        plan.validate()
        attachments = dict(attachments or {})
        interfaces = dict(interfaces or {})
        for spec in plan:
            apply = self._resolve(spec, channel, attachments, interfaces)
            self.sim.at(spec.at, self._fire, spec, apply,
                        label=f"fault {spec.kind} {spec.target}")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _resolve(self, spec: FaultSpec, channel: Optional[RadioChannel],
                 attachments: Dict[str, object],
                 interfaces: Dict[str, NetworkInterface]) -> Callable[[], None]:
        """Bind a spec to its victim; raises KeyError for unknown targets."""
        if spec.kind in ("serial_noise", "serial_drop"):
            return partial(self._serial_fault, spec, attachments[spec.target])
        if spec.kind in ("tnc_wedge", "tnc_reboot", "tnc_garbage"):
            return partial(self._tnc_fault, spec, attachments[spec.target])
        if spec.kind in ("channel_fade", "partition"):
            if channel is None:
                raise ValueError(f"{spec.kind} needs a channel")
            if spec.target not in channel.ports:
                raise KeyError(spec.target)
            if spec.kind == "partition" and spec.peer not in channel.ports:
                raise KeyError(spec.peer)
            return partial(self._channel_fault, spec, channel)
        if spec.kind == "iface_flap":
            return partial(self._flap, spec, interfaces[spec.target])
        raise ValueError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover

    def _fire(self, spec: FaultSpec, apply: Callable[[], None]) -> None:
        self.faults_injected += 1
        if self.tracer is not None:
            self.tracer.log("fault.inject", spec.target, spec.kind,
                            duration=spec.duration)
        apply()

    def _clear(self, spec: FaultSpec, undo: Callable[[], None]) -> None:
        self.sim.at(spec.end, self._run_clear, spec, undo,
                    label=f"fault-clear {spec.kind} {spec.target}")

    def _run_clear(self, spec: FaultSpec, undo: Callable[[], None]) -> None:
        self.faults_cleared += 1
        if self.tracer is not None:
            self.tracer.log("fault.clear", spec.target, spec.kind)
        undo()

    # ------------------------------------------------------------------
    # serial-line faults
    # ------------------------------------------------------------------

    def _serial_fault(self, spec: FaultSpec, attachment: object) -> None:
        # Host-side endpoint: bytes arriving from the TNC, i.e. the §2.2
        # receive path the paper's driver must survive.
        endpoint = attachment.serial.a
        line_noise = LineNoiseFilter(
            injector=self,
            spec=spec,
            rng=self.streams.stream(f"fault/serial/{spec.target}"),
            drop=spec.kind == "serial_drop",
        )
        endpoint.rx_fault = line_noise
        self._clear(spec, partial(self._remove_filter, endpoint, line_noise))

    @staticmethod
    def _remove_filter(endpoint: object, installed: Callable) -> None:
        # Only uninstall our own filter: a later, overlapping window may
        # have replaced it (last writer wins while both are active).
        if endpoint.rx_fault is installed:
            endpoint.rx_fault = None

    # ------------------------------------------------------------------
    # TNC faults
    # ------------------------------------------------------------------

    def _tnc_fault(self, spec: FaultSpec, attachment: object) -> None:
        tnc = attachment.tnc
        if spec.kind == "tnc_wedge":
            # Wedge now, or (under exploration) defer one second -- the
            # "wedge now/later" race the paper's §3 lockup hinges on.
            if self.choice(f"wedge-later:{spec.target}", 2) == 1:
                self.sim.schedule(1 * SECOND, tnc.wedge,
                                  label=f"fault tnc_wedge {spec.target}")
            else:
                tnc.wedge()
        elif spec.kind == "tnc_reboot":
            tnc.reboot()
        else:  # tnc_garbage: the firmware hiccups and spews noise upline
            rng = self.streams.stream(f"fault/garbage/{spec.target}")
            burst = bytes(int(rng.random() * 256) for _ in range(spec.count))
            self.garbage_bytes += len(burst)
            attachment.serial.b.write(burst)

    # ------------------------------------------------------------------
    # radio-channel faults
    # ------------------------------------------------------------------

    def _channel_fault(self, spec: FaultSpec, channel: RadioChannel) -> None:
        if spec.kind == "channel_fade":
            # Under exploration, a fade window is itself a choice: the
            # checker explores both the faded and the clean schedule.
            if self.choice(f"fade-on:{spec.target}", 2) == 1:
                return
            channel.fade_probability[spec.target] = spec.probability
            self._clear(spec, partial(channel.fade_probability.pop,
                                      spec.target, None))
        else:  # partition
            partition = _Partition(channel, ((spec.target, spec.peer),
                                             (spec.peer, spec.target)))
            partition.apply()
            self._clear(spec, partition.undo)

    # ------------------------------------------------------------------
    # interface faults
    # ------------------------------------------------------------------

    def _flap(self, spec: FaultSpec, interface: NetworkInterface) -> None:
        interface.if_ioctl("down")
        self._clear(spec, partial(interface.if_ioctl, "up"))
