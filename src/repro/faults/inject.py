"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector owns no policy -- it walks the plan and schedules each
spec against the component hooks the subsystem layers expose
(``SerialEndpoint.rx_fault``, ``KissTnc.wedge/reboot``,
``RadioChannel.fade_probability/blocked_pairs``,
``NetworkInterface.if_ioctl``).  Every random decision comes from a
stream named after the fault and its target (``fault/serial/<name>``,
``fault/garbage/<name>``; the channel draws fades from
``fault/fade/<port>`` itself), so injecting faults never perturbs the
RNG sequence of healthy components and metrics stay a pure function of
(plan, seed).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.netif.ifnet import NetworkInterface
from repro.radio.channel import RadioChannel
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer


class FaultInjector:
    """Schedules a plan's faults against live components."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.streams = streams
        self.tracer = tracer

        # accounting (all deterministic given the plan + seed)
        self.faults_injected = 0
        self.faults_cleared = 0
        self.bytes_corrupted = 0
        self.bytes_dropped = 0
        self.garbage_bytes = 0

    def install(
        self,
        plan: FaultPlan,
        channel: Optional[RadioChannel] = None,
        attachments: Optional[Mapping[str, object]] = None,
        interfaces: Optional[Mapping[str, NetworkInterface]] = None,
    ) -> None:
        """Validate ``plan`` and schedule every spec.

        ``attachments`` maps target names to
        :class:`~repro.core.hosts.RadioAttachment` bundles (serial/TNC
        faults); ``channel`` serves fades and partitions;
        ``interfaces`` serves flaps.  Missing a needed map raises
        immediately, at install time, not mid-run.
        """
        plan.validate()
        attachments = dict(attachments or {})
        interfaces = dict(interfaces or {})
        for spec in plan:
            apply = self._resolve(spec, channel, attachments, interfaces)
            self.sim.at(spec.at, self._fire, spec, apply,
                        label=f"fault {spec.kind} {spec.target}")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _resolve(self, spec: FaultSpec, channel: Optional[RadioChannel],
                 attachments: Dict[str, object],
                 interfaces: Dict[str, NetworkInterface]) -> Callable[[], None]:
        """Bind a spec to its victim; raises KeyError for unknown targets."""
        if spec.kind in ("serial_noise", "serial_drop"):
            attachment = attachments[spec.target]
            return lambda: self._serial_fault(spec, attachment)
        if spec.kind in ("tnc_wedge", "tnc_reboot", "tnc_garbage"):
            attachment = attachments[spec.target]
            return lambda: self._tnc_fault(spec, attachment)
        if spec.kind in ("channel_fade", "partition"):
            if channel is None:
                raise ValueError(f"{spec.kind} needs a channel")
            if spec.target not in channel.ports:
                raise KeyError(spec.target)
            if spec.kind == "partition" and spec.peer not in channel.ports:
                raise KeyError(spec.peer)
            return lambda: self._channel_fault(spec, channel)
        if spec.kind == "iface_flap":
            interface = interfaces[spec.target]
            return lambda: self._flap(spec, interface)
        raise ValueError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover

    def _fire(self, spec: FaultSpec, apply: Callable[[], None]) -> None:
        self.faults_injected += 1
        if self.tracer is not None:
            self.tracer.log("fault.inject", spec.target, spec.kind,
                            duration=spec.duration)
        apply()

    def _clear(self, spec: FaultSpec, undo: Callable[[], None]) -> None:
        def run() -> None:
            self.faults_cleared += 1
            if self.tracer is not None:
                self.tracer.log("fault.clear", spec.target, spec.kind)
            undo()
        self.sim.at(spec.end, run, label=f"fault-clear {spec.kind} {spec.target}")

    # ------------------------------------------------------------------
    # serial-line faults
    # ------------------------------------------------------------------

    def _serial_fault(self, spec: FaultSpec, attachment: object) -> None:
        # Host-side endpoint: bytes arriving from the TNC, i.e. the §2.2
        # receive path the paper's driver must survive.
        endpoint = attachment.serial.a
        rng = self.streams.stream(f"fault/serial/{spec.target}")
        drop = spec.kind == "serial_drop"

        def line_noise(byte: int) -> Optional[int]:
            if rng.random() >= spec.probability:
                return byte
            if drop:
                self.bytes_dropped += 1
                return None
            self.bytes_corrupted += 1
            return byte ^ (1 << int(rng.random() * 8))

        endpoint.rx_fault = line_noise
        self._clear(spec, lambda: self._remove_filter(endpoint, line_noise))

    @staticmethod
    def _remove_filter(endpoint: object, installed: Callable) -> None:
        # Only uninstall our own filter: a later, overlapping window may
        # have replaced it (last writer wins while both are active).
        if endpoint.rx_fault is installed:
            endpoint.rx_fault = None

    # ------------------------------------------------------------------
    # TNC faults
    # ------------------------------------------------------------------

    def _tnc_fault(self, spec: FaultSpec, attachment: object) -> None:
        tnc = attachment.tnc
        if spec.kind == "tnc_wedge":
            tnc.wedge()
        elif spec.kind == "tnc_reboot":
            tnc.reboot()
        else:  # tnc_garbage: the firmware hiccups and spews noise upline
            rng = self.streams.stream(f"fault/garbage/{spec.target}")
            burst = bytes(int(rng.random() * 256) for _ in range(spec.count))
            self.garbage_bytes += len(burst)
            attachment.serial.b.write(burst)

    # ------------------------------------------------------------------
    # radio-channel faults
    # ------------------------------------------------------------------

    def _channel_fault(self, spec: FaultSpec, channel: RadioChannel) -> None:
        if spec.kind == "channel_fade":
            channel.fade_probability[spec.target] = spec.probability

            def undo() -> None:
                channel.fade_probability.pop(spec.target, None)
        else:  # partition
            pair_a = (spec.target, spec.peer)
            pair_b = (spec.peer, spec.target)
            channel.blocked_pairs.add(pair_a)
            channel.blocked_pairs.add(pair_b)

            def undo() -> None:
                channel.blocked_pairs.discard(pair_a)
                channel.blocked_pairs.discard(pair_b)
        self._clear(spec, undo)

    # ------------------------------------------------------------------
    # interface faults
    # ------------------------------------------------------------------

    def _flap(self, spec: FaultSpec, interface: NetworkInterface) -> None:
        interface.if_ioctl("down")
        self._clear(spec, lambda: interface.if_ioctl("up"))
