"""Deterministic fault injection for the packet-radio simulation.

Split cleanly in two:

* :mod:`repro.faults.plan` -- *what* goes wrong: declarative, validated
  :class:`FaultSpec`/:class:`FaultPlan` schedules plus the standard
  :func:`chaos_plan` preset.
* :mod:`repro.faults.inject` -- *how* it is applied: the
  :class:`FaultInjector` binds a plan to live components through the
  hooks each layer exposes.

All randomness is drawn from named seeded streams, so a faulted run's
metrics are a pure function of (plan, seed) -- the property the chaos
harness (``python -m repro chaos``) asserts by digest comparison.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    TOURNAMENT_PLANS,
    FaultPlan,
    FaultSpec,
    chaos_plan,
    tournament_plan,
)

__all__ = [
    "FAULT_KINDS",
    "TOURNAMENT_PLANS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "chaos_plan",
    "tournament_plan",
]
