"""Declarative fault plans.

A :class:`FaultPlan` is an immutable, validated schedule of
:class:`FaultSpec` events -- *what* goes wrong, *where*, and *when* --
kept strictly separate from the machinery that applies it
(:mod:`repro.faults.inject`).  Because the plan is pure data and every
probabilistic decision is drawn from a named :class:`~repro.sim.rand.RandomStreams`
stream, a chaos run is a pure function of (plan, seed): the same plan on
the same seed produces byte-identical metrics no matter how the
surrounding sweep is parallelised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.sim.clock import SECOND

#: Everything the injector knows how to break.
FAULT_KINDS = frozenset({
    "serial_noise",    # corrupt bytes on the host<-TNC serial RX path
    "serial_drop",     # drop bytes on the host<-TNC serial RX path
    "tnc_wedge",       # hang the TNC firmware main loop (§3 lockup)
    "tnc_garbage",     # TNC spews a burst of garbage up the serial line
    "tnc_reboot",      # spontaneous TNC reset (deaf/mute while rebooting)
    "channel_fade",    # receiver loses frames with given probability
    "partition",       # two stations stop hearing each other
    "iface_flap",      # administratively down, later up
})

#: Kinds that act over a window and need ``duration`` > 0.
WINDOWED_KINDS = frozenset({
    "serial_noise", "serial_drop", "channel_fade", "partition", "iface_flap",
})

#: Kinds that draw per-byte/per-frame decisions and need ``probability``.
PROBABILISTIC_KINDS = frozenset({"serial_noise", "serial_drop", "channel_fade"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault event.

    ``at`` is absolute simulated microseconds; ``target`` names the
    victim (a station/port name for radio faults, an attachment name for
    serial/TNC faults, an interface name for flaps).  ``peer`` is only
    meaningful for ``partition``; ``count`` only for ``tnc_garbage``.
    """

    kind: str
    at: int
    target: str
    duration: int = 0
    probability: float = 0.0
    peer: str = ""
    count: int = 0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"{self.kind}: at={self.at} is before t=0")
        if not self.target:
            raise ValueError(f"{self.kind}: target must be non-empty")
        if self.kind in WINDOWED_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind}: needs duration > 0")
        if self.kind in PROBABILISTIC_KINDS:
            if not (0.0 < self.probability <= 1.0):
                raise ValueError(
                    f"{self.kind}: probability {self.probability} not in (0, 1]")
        if self.kind == "partition" and not self.peer:
            raise ValueError("partition: needs a peer station")
        if self.kind == "tnc_garbage" and self.count <= 0:
            raise ValueError("tnc_garbage: needs count > 0")

    @property
    def end(self) -> int:
        """Absolute time the fault clears (== ``at`` for point faults)."""
        return self.at + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of fault events."""

    specs: Tuple[FaultSpec, ...] = ()
    name: str = "plan"

    @classmethod
    def of(cls, specs: Sequence[FaultSpec], name: str = "plan") -> "FaultPlan":
        """Build a plan sorted by injection time; validates every spec."""
        ordered = tuple(sorted(specs, key=lambda s: (s.at, s.kind, s.target)))
        plan = cls(specs=ordered, name=name)
        plan.validate()
        return plan

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def last_clear_time(self) -> int:
        """When the final fault has cleared (0 for an empty plan)."""
        return max((spec.end for spec in self.specs), default=0)


#: The fault-plan axis of the policy tournament, mildest to harshest.
TOURNAMENT_PLANS = ("storm", "noise", "fade", "partition", "wedge")


def tournament_plan(
    name: str,
    duration_seconds: int,
    gateway: str = "gateway",
    gateway_port: str = "NT7GW",
    stations: Sequence[str] = ("WL0", "WL1"),
) -> FaultPlan:
    """One named hostile-link condition for the policy tournament.

    Each plan opens a window of trouble in the middle of the run and
    clears by ~75% so the tail measures recovery, not just survival:

    * ``storm`` -- the §4.1 condition: the hub's receiver fades hard,
      so every sender's data frames die on arrival and timeout-driven
      retransmissions pile onto the shared channel.
    * ``noise`` -- the host<-TNC serial line corrupts, then drops bytes.
    * ``fade`` -- the stations' receivers fade (ACK loss, asymmetric).
    * ``partition`` -- a station and the hub stop hearing each other
      entirely: link-layer give-up and post-blackout recovery.
    * ``wedge`` -- the hub TNC spews garbage and spontaneously reboots,
      twice.

    ``gateway`` names the hub's serial/TNC attachment, ``gateway_port``
    its radio port on the channel; ``stations`` are the victim radio
    ports for fades and partitions.
    """
    total = duration_seconds * SECOND
    if name == "storm":
        specs = [
            FaultSpec("channel_fade", at=total // 5, target=gateway_port,
                      duration=total // 2, probability=0.45),
        ]
    elif name == "noise":
        specs = [
            FaultSpec("serial_noise", at=total * 3 // 20, target=gateway,
                      duration=3 * total // 10, probability=0.04),
            FaultSpec("serial_drop", at=total * 11 // 20, target=gateway,
                      duration=total // 5, probability=0.02),
        ]
    elif name == "fade":
        specs = [
            FaultSpec("channel_fade", at=total // 4, target=station,
                      duration=2 * total // 5, probability=0.35)
            for station in stations
        ]
    elif name == "partition":
        specs = [
            FaultSpec("partition", at=2 * total // 5, target=stations[0],
                      peer=gateway_port, duration=total // 4),
        ]
    elif name == "wedge":
        specs = [
            FaultSpec("tnc_garbage", at=total // 5, target=gateway, count=256),
            FaultSpec("tnc_reboot", at=7 * total // 20, target=gateway),
            FaultSpec("tnc_reboot", at=13 * total // 20, target=gateway),
        ]
    else:
        raise ValueError(f"unknown tournament plan {name!r}")
    return FaultPlan.of(specs, name=f"tournament-{name}")


def chaos_plan(
    duration_seconds: int,
    gateway: str = "gateway",
    stations: Sequence[str] = (),
) -> FaultPlan:
    """The standard chaos-soak schedule, scaled to the run length.

    Phases (fractions of the run): early line noise on the gateway's
    serial RX path, a mid-run TNC wedge (the tentpole recovery test), a
    radio fade and a partition among the stations, an interface flap,
    and a garbage burst -- all cleared by ~80% of the run so the tail
    measures post-recovery health.
    """
    total = duration_seconds * SECOND
    specs = [
        FaultSpec("serial_noise", at=total // 10, target=gateway,
                  duration=total // 10, probability=0.02),
        FaultSpec("tnc_garbage", at=total // 5, target=gateway, count=512),
        FaultSpec("tnc_wedge", at=3 * total // 10, target=gateway),
        FaultSpec("serial_drop", at=6 * total // 10, target=gateway,
                  duration=total // 20, probability=0.01),
    ]
    if stations:
        first = stations[0]
        specs.append(FaultSpec("channel_fade", at=total // 4, target=first,
                               duration=total // 5, probability=0.3))
        specs.append(FaultSpec("iface_flap", at=7 * total // 10, target=first,
                               duration=total // 20))
    if len(stations) >= 2:
        specs.append(FaultSpec("partition", at=total // 2, target=stations[0],
                               peer=stations[1], duration=total // 10))
    return FaultPlan.of(specs, name=f"chaos-{duration_seconds}s")
