"""axdump: decode frames the way tcpdump would have printed them.

Give it raw on-air bytes and it produces one-line summaries down the
whole stack: AX.25 header, then the PID's payload (IP with ICMP/UDP/TCP
inside, ARP, NET/ROM network and transport layers, plain text).  The
:class:`ChannelMonitor` taps a live :class:`~repro.radio.channel.
RadioChannel` and keeps a rolling decoded log -- the software equivalent
of leaving a monitor TNC running next to the gateway.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ax25.defs import PID_ARPA_ARP, PID_ARPA_IP, PID_NETROM, PID_NO_L3, FrameType
from repro.ax25.frames import AX25Frame, FrameError
from repro.inet.arp import ARP_REPLY, ARP_REQUEST, ArpError, ArpPacket
from repro.inet.icmp import (
    ICMP_ACCESS_CONTROL,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_REDIRECT,
    ICMP_SOURCE_QUENCH,
    ICMP_TIME_EXCEEDED,
    ICMP_UNREACHABLE,
    IcmpError,
    IcmpMessage,
)
from repro.inet.ip import IPError, IPv4Datagram, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.inet.tcp import TcpError, TcpSegment
from repro.inet.udp import UdpDatagram, UdpError
from repro.netrom.protocol import NODES_SIGNATURE, NetRomError, NetRomPacket, NodesBroadcast
from repro.netrom.transport import TransportError, TransportFrame
from repro.obs.pcap import PcapWriter
from repro.radio.channel import RadioChannel
from repro.sim.clock import format_time

_ICMP_NAMES = {
    ICMP_ECHO_REQUEST: "echo request",
    ICMP_ECHO_REPLY: "echo reply",
    ICMP_UNREACHABLE: "unreachable",
    ICMP_SOURCE_QUENCH: "source quench",
    ICMP_REDIRECT: "redirect",
    ICMP_TIME_EXCEEDED: "time exceeded",
    ICMP_ACCESS_CONTROL: "access-control",
}


def decode_ip_packet(data: bytes, indent: str = "") -> List[str]:
    """Decode an IP datagram (and its payload) to summary lines."""
    try:
        datagram = IPv4Datagram.decode(data)
    except IPError as exc:
        return [f"{indent}ip: undecodable ({exc})"]
    lines = [f"{indent}ip {datagram}"]
    if datagram.is_fragment and datagram.fragment_offset > 0:
        return lines  # non-first fragments carry no parseable header
    payload = datagram.payload
    if datagram.protocol == PROTO_ICMP:
        try:
            message = IcmpMessage.decode(payload)
            name = _ICMP_NAMES.get(message.icmp_type, f"type {message.icmp_type}")
            lines.append(f"{indent}  icmp {name} code={message.code} "
                         f"len={len(message.body)}")
        except IcmpError as exc:
            lines.append(f"{indent}  icmp: undecodable ({exc})")
    elif datagram.protocol == PROTO_UDP:
        try:
            udp = UdpDatagram.decode(payload, datagram.source,
                                     datagram.destination, verify=False)
            lines.append(f"{indent}  udp {udp.source_port}>"
                         f"{udp.destination_port} len={len(udp.payload)}")
        except UdpError as exc:
            lines.append(f"{indent}  udp: undecodable ({exc})")
    elif datagram.protocol == PROTO_TCP:
        try:
            segment = TcpSegment.decode(payload, datagram.source,
                                        datagram.destination, verify=False)
            lines.append(f"{indent}  tcp {segment.describe()}")
        except TcpError as exc:
            lines.append(f"{indent}  tcp: undecodable ({exc})")
    return lines


def _decode_arp(data: bytes, indent: str) -> List[str]:
    try:
        packet = ArpPacket.decode(data)
    except ArpError as exc:
        return [f"{indent}arp: undecodable ({exc})"]
    op = {ARP_REQUEST: "who-has", ARP_REPLY: "is-at"}.get(
        packet.operation, f"op {packet.operation}")
    if packet.operation == ARP_REQUEST:
        return [f"{indent}arp {op} {packet.target_ip} tell {packet.sender_ip}"]
    return [f"{indent}arp {op} {packet.sender_ip}"]


def _decode_netrom(data: bytes, indent: str) -> List[str]:
    if data and data[0] == NODES_SIGNATURE:
        try:
            broadcast = NodesBroadcast.decode(data)
        except NetRomError as exc:
            return [f"{indent}netrom nodes: undecodable ({exc})"]
        return [f"{indent}netrom NODES from {broadcast.sender_alias} "
                f"({len(broadcast.entries)} routes)"]
    try:
        packet = NetRomPacket.decode(data)
    except NetRomError as exc:
        return [f"{indent}netrom: undecodable ({exc})"]
    lines = [f"{indent}{packet}"]
    if packet.protocol == 0x0C:
        lines.extend(decode_ip_packet(packet.payload, indent + "  "))
    elif packet.protocol == 0x01:
        try:
            frame = TransportFrame.decode(packet.payload)
            lines.append(f"{indent}  circuit idx={frame.circuit_index} "
                         f"id={frame.circuit_id} op={frame.base_opcode} "
                         f"len={len(frame.payload)}")
        except TransportError:
            lines.append(f"{indent}  circuit: undecodable")
    return lines


def decode_ax25_frame(data: bytes, indent: str = "") -> List[str]:
    """Decode one on-air AX.25 frame down the whole stack."""
    try:
        frame = AX25Frame.decode(data)
    except FrameError as exc:
        return [f"{indent}ax25: undecodable {len(data)} bytes ({exc})"]
    lines = [f"{indent}ax25 {frame}"]
    if frame.frame_type not in (FrameType.I, FrameType.UI) or not frame.info:
        return lines
    if frame.pid == PID_ARPA_IP:
        lines.extend(decode_ip_packet(frame.info, indent + "  "))
    elif frame.pid == PID_ARPA_ARP:
        lines.extend(_decode_arp(frame.info, indent + "  "))
    elif frame.pid == PID_NETROM:
        lines.extend(_decode_netrom(frame.info, indent + "  "))
    elif frame.pid == PID_NO_L3:
        text = frame.info.decode("latin-1", "replace").strip()
        preview = text[:40] + ("..." if len(text) > 40 else "")
        lines.append(f"{indent}  text {preview!r}")
    return lines


class ChannelMonitor:
    """A receive-only station that decodes everything it hears.

    Pass a :class:`~repro.obs.pcap.PcapWriter` as ``pcap`` to also
    capture every heard frame into a Wireshark-compatible file
    (LINKTYPE_AX25_KISS).
    """

    def __init__(self, channel: RadioChannel, name: str = "MONITOR",
                 pcap: Optional[PcapWriter] = None) -> None:
        self.channel = channel
        self.sim = channel.sim
        self.lines: List[str] = []
        self.frames_heard = 0
        self.pcap = pcap
        channel.attach(name, self._heard)

    def _heard(self, payload: bytes) -> None:
        self.frames_heard += 1
        if self.pcap is not None:
            self.pcap.add_frame(self.sim.now, payload)
        stamp = format_time(self.sim.now)
        for index, line in enumerate(decode_ax25_frame(payload)):
            prefix = f"[{stamp}] " if index == 0 else " " * (len(stamp) + 3)
            self.lines.append(prefix + line)

    def render(self, last: Optional[int] = None) -> str:
        """Render as human-readable text."""
        lines = self.lines if last is None else self.lines[-last:]
        return "\n".join(lines)
