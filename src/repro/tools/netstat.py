"""netstat/ifconfig/arp-style reports for a simulated host.

Formatting helpers that render a :class:`~repro.inet.netstack.NetStack`
the way the era's admin commands would: interface table with counters,
routing table, ARP caches, protocol statistics, and active TCP
connections.  Examples print these; tests assert against the live
objects instead.
"""

from __future__ import annotations

from typing import List, Optional

from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.inet.tcp import TcpConnection
from repro.netif.ifnet import InterfaceFlags
from repro.obs.instruments import Gauge, Histogram, Instruments, Rate


def format_interfaces(stack: NetStack) -> str:
    """ifconfig-ish: one line per interface with BSD counters."""
    lines = [f"{'Name':<6} {'Mtu':>5} {'Address':<15} "
             f"{'Ipkts':>7} {'Ierrs':>6} {'Opkts':>7} {'Oerrs':>6} Flags"]
    for iface in stack.interfaces:
        flags = []
        if iface.is_up:
            flags.append("UP")
        for flag_name in ("BROADCAST", "LOOPBACK", "POINTOPOINT", "NOARP"):
            if iface.flags & getattr(InterfaceFlags, flag_name):
                flags.append(flag_name)
        lines.append(
            f"{iface.name:<6} {iface.mtu:>5} {str(iface.address or '-'):<15} "
            f"{iface.ipackets:>7} {iface.ierrors:>6} "
            f"{iface.opackets:>7} {iface.oerrors:>6} {'|'.join(flags)}"
        )
    return "\n".join(lines)


def format_routes(stack: NetStack) -> str:
    """netstat -r: the routing table."""
    lines = [f"{'Destination':<16} {'Gateway':<16} {'Interface':<9} "
             f"{'Kind':<5} {'Use':>6}"]
    for route in stack.routes.routes():
        destination = str(route.destination) if route.destination.value else "default"
        gateway = str(route.gateway) if route.gateway else "direct"
        kind = "host" if route.is_host_route else "net"
        if not route.destination.value:
            kind = "dflt"
        lines.append(f"{destination:<16} {gateway:<16} "
                     f"{route.interface.name:<9} {kind:<5} {route.uses:>6}")
    return "\n".join(lines)


def format_arp_table(stack: NetStack) -> str:
    """arp -a across every interface that runs an ARP service."""
    lines: List[str] = []
    for iface in stack.interfaces:
        arp = getattr(iface, "arp", None)
        if arp is None:
            continue
        for ip_value, entry in sorted(arp.cache.items()):
            ip_text = str(IPv4Address(ip_value))
            hw = entry.hw_address.hex(":")
            flavour = "permanent" if entry.static else "dynamic"
            extra = ""
            if entry.link_hint:
                extra = f" via {entry.link_hint}"
            lines.append(f"{ip_text} at {hw} on {iface.name} [{flavour}]{extra}")
    return "\n".join(lines) if lines else "(no arp entries)"


def _describe_connection(conn: TcpConnection) -> str:
    remote = f"{conn.remote_ip}:{conn.remote_port}" if conn.remote_ip else "*"
    return (f"tcp  {conn.local_port:<6} {remote:<21} {conn.state.value:<12} "
            f"snd={conn.stats['bytes_sent']} rcv={conn.stats['bytes_received']} "
            f"rexmit={conn.stats['retransmissions']} "
            f"fast={conn.stats['fast_retransmits']} "
            f"rto={conn.rto_policy.current() // 1000}ms "
            f"cwnd={conn.cc_policy.window()}")


def format_netstat(stack: NetStack) -> str:
    """netstat: protocol counters plus active TCP connections."""
    counters = stack.counters
    lines = [
        f"--- {stack.hostname} ---",
        "ip:",
        f"    {counters['ip_received']} total packets received",
        f"    {counters['ip_delivered']} delivered locally",
        f"    {counters['ip_forwarded']} forwarded",
        f"    {counters['ip_no_route']} dropped (no route)",
        f"    {counters['ip_input_drops']} dropped (input queue full)",
        f"    {counters['ip_bad']} bad headers",
        f"    {counters['frags_sent']} fragments created",
        "interfaces:",
        f"    {counters['if_snd_drops']} output queue drops",
        f"    {counters['if_output_sheds']} packets shed under backlog",
        "icmp:",
        f"    {counters['icmp_received']} messages received",
        f"    {counters['icmp_echo_replied']} echo requests answered",
        f"    {counters['redirects_sent']} redirects sent, "
        f"{counters['redirects_followed']} followed",
        f"    {counters['quench_sent']} source quenches sent",
        "udp:",
        f"    {counters['udp_received']} datagrams received",
        f"    {counters['udp_no_port']} to unbound ports",
        "tcp connections:",
    ]
    connections = list(stack.tcp._connections.values())
    if connections:
        lines.extend(f"    {_describe_connection(conn)}" for conn in connections)
    else:
        lines.append("    (none)")
    return "\n".join(lines)


def format_instruments(instruments: Optional[Instruments]) -> str:
    """vmstat-ish summary of obs instruments (gauges, rates, histograms)."""
    if instruments is None:
        return "(no instruments attached)"
    lines: List[str] = []
    for name in sorted(instruments._instruments):
        instrument = instruments._instruments[name]
        if isinstance(instrument, Gauge):
            if instrument.samples:
                mean = instrument.sum // instrument.samples
                lines.append(f"{name:<28} gauge n={instrument.samples} "
                             f"min={instrument.min} mean~{mean} "
                             f"max={instrument.max} last={instrument.last}")
        elif isinstance(instrument, Rate):
            if instrument.total:
                lines.append(f"{name:<28} rate total={instrument.total} "
                             f"max/window={instrument.max_per_window()}")
        elif isinstance(instrument, Histogram):
            if instrument.total:
                lines.append(f"{name:<28} hist n={instrument.total} "
                             f"p50<={instrument.percentile(50)} "
                             f"p95<={instrument.percentile(95)} "
                             f"max={instrument.max}")
    return "\n".join(lines) if lines else "(no samples)"
