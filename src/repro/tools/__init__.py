"""Operator tools: the commands a 1988 sysadmin would run.

* :mod:`~repro.tools.axdump` -- a tcpdump-style decoder for AX.25
  frames and everything inside them (KISS records, IP, ICMP, UDP, TCP,
  ARP, NET/ROM), plus a live monitor that taps a radio channel.
* :mod:`~repro.tools.netstat` -- ``netstat``/``ifconfig``/``arp -a``
  style reports for any :class:`~repro.inet.netstack.NetStack`.
"""

from repro.tools.axdump import ChannelMonitor, decode_ax25_frame, decode_ip_packet
from repro.tools.netstat import format_arp_table, format_interfaces, format_netstat, format_routes

__all__ = [
    "ChannelMonitor",
    "decode_ax25_frame",
    "decode_ip_packet",
    "format_arp_table",
    "format_interfaces",
    "format_netstat",
    "format_routes",
]
