"""Parallel experiment harness: seed sweeps, parameter grids, results.

The simulator is single-threaded by design (determinism), so the only
route to using all cores is process-level parallelism: the harness fans
(experiment, params, seed) tasks across a ``multiprocessing`` pool,
collects per-run metric dicts, aggregates them into mean/stddev/95%-CI
statistics via :mod:`repro.metrics.stats`, and writes machine-readable
``BENCH_*.json`` files so the repo's performance trajectory is tracked
across PRs.

Entry points:

* ``python -m repro sweep --bench e3 --seeds 8 --procs 4`` -- the CLI;
* :func:`repro.harness.runner.run_sweep` -- the library call;
* :data:`repro.harness.experiments.EXPERIMENTS` -- the registry of
  named experiments (e3, a3, perf, soak).
"""

from repro.harness.experiments import EXPERIMENTS, Experiment
from repro.harness.results import (
    bench_json_path,
    metrics_digest,
    sweep_digests,
    write_bench_json,
)
from repro.harness.runner import RunRecord, SweepResult, SweepSpec, run_sweep

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "RunRecord",
    "SweepResult",
    "SweepSpec",
    "bench_json_path",
    "metrics_digest",
    "run_sweep",
    "sweep_digests",
    "write_bench_json",
]
