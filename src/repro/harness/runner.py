"""The parallel sweep runner.

A sweep is a parameter grid crossed with a seed list.  Each (params,
seed) cell runs one experiment function in a worker process and returns
a flat metrics dict; the parent aggregates every metric across seeds
with :func:`repro.metrics.stats.aggregate`.

Determinism contract: an experiment's metrics are a pure function of
``(params, seed)`` -- workers carry no state into the run, so the same
seed list produces identical per-seed metric values whether the sweep
runs inline, in 2 processes or in 16.  (Wall-clock and worker PID are
recorded separately under ``runtime`` and are of course not
reproducible.)
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.metrics.stats import Aggregate, aggregate


@dataclass(frozen=True)
class SweepSpec:
    """What to run: experiment name, seeds, parameter grid, workers."""

    bench: str
    seeds: Tuple[int, ...]
    grid: Tuple[Mapping[str, object], ...] = ()   #: () = experiment default
    procs: int = 1

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        if self.procs < 1:
            raise ValueError("procs must be >= 1")


@dataclass(frozen=True)
class RunRecord:
    """One completed (params, seed) cell."""

    bench: str
    params: Dict[str, object]
    seed: int
    metrics: Dict[str, float]
    pid: int
    wall_seconds: float

    def params_key(self) -> str:
        """Canonical string identity of the parameter point."""
        return json.dumps(self.params, sort_keys=True, default=str)


@dataclass
class SweepResult:
    """Everything a sweep produced, plus aggregates."""

    spec: SweepSpec
    records: List[RunRecord]
    wall_seconds: float

    #: params_key -> metric name -> cross-seed Aggregate
    aggregates: Dict[str, Dict[str, Aggregate]] = field(default_factory=dict)

    @property
    def workers_used(self) -> int:
        """Number of distinct worker processes that executed tasks."""
        return len({record.pid for record in self.records})

    def grid_points(self) -> List[Tuple[str, Dict[str, object]]]:
        """(params_key, params) for each grid point, in first-seen order."""
        seen: Dict[str, Dict[str, object]] = {}
        for record in self.records:
            seen.setdefault(record.params_key(), record.params)
        return list(seen.items())

    def compute_aggregates(self) -> None:
        """Aggregate every metric across seeds, per grid point."""
        grouped: Dict[str, List[RunRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.params_key(), []).append(record)
        self.aggregates = {}
        for key, records in grouped.items():
            metrics: Dict[str, List[float]] = {}
            for record in records:
                for name, value in record.metrics.items():
                    metrics.setdefault(name, []).append(float(value))
            self.aggregates[key] = {
                name: aggregate(values) for name, values in metrics.items()
            }


def _run_task(task: Tuple[str, Dict[str, object], int]) -> RunRecord:
    """Execute one cell.  Module-level so worker processes can import it."""
    from repro.harness.experiments import EXPERIMENTS

    bench, params, seed = task
    experiment = EXPERIMENTS[bench]
    started = time.perf_counter()
    metrics = experiment.fn(seed=seed, **params)
    return RunRecord(
        bench=bench,
        params=dict(params),
        seed=seed,
        metrics={str(k): float(v) for k, v in metrics.items()},
        pid=os.getpid(),
        wall_seconds=time.perf_counter() - started,
    )


def run_sweep(spec: SweepSpec,
              progress=None) -> SweepResult:
    """Run the sweep, in parallel when ``spec.procs > 1``.

    ``progress`` (optional) is called with each finished
    :class:`RunRecord` as results stream in.
    """
    from repro.harness.experiments import EXPERIMENTS

    if spec.bench not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown bench {spec.bench!r} (known: {known})")
    experiment = EXPERIMENTS[spec.bench]
    grid: Sequence[Mapping[str, object]] = spec.grid or experiment.grid
    tasks = [
        (spec.bench, dict(params), seed)
        for params in grid
        for seed in spec.seeds
    ]
    started = time.perf_counter()
    records: List[RunRecord] = []
    if spec.procs == 1 or len(tasks) == 1:
        for task in tasks:
            record = _run_task(task)
            records.append(record)
            if progress is not None:
                progress(record)
    else:
        # chunksize=1 so tasks fan out evenly even when one parameter
        # point is much slower than another.
        with multiprocessing.Pool(processes=min(spec.procs,
                                                len(tasks))) as pool:
            for record in pool.imap(_run_task, tasks, chunksize=1):
                records.append(record)
                if progress is not None:
                    progress(record)
    # Stable order: grid-major then seed, independent of completion order.
    order = {(json.dumps(dict(p), sort_keys=True, default=str), s): i
             for i, (p, s) in enumerate(
                 (params, seed) for params in grid for seed in spec.seeds)}
    records.sort(key=lambda r: order[(r.params_key(), r.seed)])
    result = SweepResult(spec=spec, records=records,
                         wall_seconds=time.perf_counter() - started)
    result.compute_aggregates()
    return result


def seeds_from_count(count: int, base: int = 1) -> Tuple[int, ...]:
    """The conventional seed list for ``--seeds N``: base..base+N-1."""
    if count < 1:
        raise ValueError("need at least one seed")
    return tuple(range(base, base + count))
