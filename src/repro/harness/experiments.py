"""The registry of named, sweepable experiments.

Each experiment is a module-level function ``fn(seed=..., **params) ->
Dict[str, float]`` (module-level so ``multiprocessing`` workers can
import it), plus a default parameter grid and seed count.  The E3 and
A3 experiments are the paper benchmarks, re-based onto the workload
generators so their offered load is a seeded arrival process rather
than a hand-rolled timer loop; ``soak`` exercises the declarative
scenario layer at population scale; ``perf`` measures the simulator
itself (its metrics are wall-clock rates and therefore *not*
seed-deterministic, unlike every other experiment).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Tuple

from repro.apps.ping import Pinger
from repro.ax25.address import AX25Address
from repro.ax25.defs import PID_NO_L3
from repro.ax25.frames import AX25Frame
from repro.core.topology import build_gateway_testbed
from repro.radio.channel import RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.radio.station import RadioStation
from repro.sim.clock import MS, SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.sanitizer import ordering_comparable
from repro.faults import chaos_plan, tournament_plan
from repro.workload.arrivals import BurstArrivals, PoissonArrivals
from repro.workload.generators import UiChatterGenerator
from repro.workload.scenario import (
    GeneratorMix,
    Scenario,
    build_scenario,
    run_scenario,
)

# ----------------------------------------------------------------------
# E3 -- §3: gateway under background channel load (workload-driven)
# ----------------------------------------------------------------------

#: Payload of one ragchew UI frame (what the §3 chatter looks like).
CHATTER_PAYLOAD = b"ragchew " * 12


def add_chatter_pair(
    sim: Simulator,
    channel: RadioChannel,
    streams: RandomStreams,
    frames_per_minute: float,
    bit_rate: int = 1200,
) -> Tuple[UiChatterGenerator, ...]:
    """Two stations exchanging Poisson UI chatter not meant for anyone else.

    Each station offers ``frames_per_minute`` on average, the same mean
    load as the old fixed-interval loop but with memoryless arrivals --
    so clumps and gaps now exercise the gateway's queues realistically.
    """
    if frames_per_minute <= 0:
        return ()
    modem = ModemProfile(bit_rate=bit_rate)
    generators = []
    pair = (("W7CHAT-1", AX25Address("W7CHAT", 2)),
            ("W7CHAT-2", AX25Address("W7CHAT", 1)))
    for name, peer in pair:
        station = RadioStation(sim, channel, name, modem=modem)
        frame = AX25Frame.ui(peer, AX25Address.parse(name), PID_NO_L3,
                             CHATTER_PAYLOAD).encode()
        arrivals = PoissonArrivals(
            streams.stream(f"workload/chatter/{name}"),
            frames_per_minute / 60.0,
        )
        generators.append(UiChatterGenerator(sim, station, frame, arrivals))
    return tuple(generators)


def run_e3(
    seed: int = 30,
    load_frames_per_minute: float = 30,
    address_filter: bool = False,
    measure_seconds: int = 600,
) -> Dict[str, float]:
    """One E3 condition: ping through the gateway under channel chatter."""
    tb = build_gateway_testbed(seed=seed, tnc_address_filter=address_filter)
    chatter = add_chatter_pair(tb.sim, tb.channel, tb.streams,
                               load_frames_per_minute)
    for generator in chatter:
        generator.start(at=1 * SECOND)
    # Warm the ARP caches so measured pings are steady state.
    warm = Pinger(tb.pc.stack)
    warm.send("128.95.1.2", count=1)
    tb.sim.run(until=120 * SECOND)

    gw_tnc = tb.gateway.radio.tnc
    gw_driver = tb.gateway.radio_interface
    serial_before = tb.gateway.radio.serial.b.bytes_sent
    not_for_us_before = gw_driver.frames_not_for_us
    up_before = gw_tnc.frames_to_host

    pinger = Pinger(tb.pc.stack)
    count = 8
    pinger.send("128.95.1.2", count=count, interval=60 * SECOND)
    tb.sim.run(until=tb.sim.now + measure_seconds * SECOND)

    serial_bytes = tb.gateway.radio.serial.b.bytes_sent - serial_before
    mean_rtt = pinger.mean_rtt_seconds()
    metrics = {
        "pings_received": float(pinger.received),
        "pings_sent": float(pinger.sent),
        "serial_bytes_to_host": float(serial_bytes),
        "frames_up": float(gw_tnc.frames_to_host - up_before),
        "frames_filtered": float(gw_tnc.frames_filtered),
        "driver_discards": float(
            gw_driver.frames_not_for_us - not_for_us_before),
        "channel_utilisation": float(tb.channel.utilisation()),
        "chatter_frames_offered": float(sum(
            g.counters["frames_offered"] for g in chatter)),
    }
    if mean_rtt is not None:
        metrics["ping_mean_rtt_s"] = mean_rtt
    return metrics


# ----------------------------------------------------------------------
# A3 -- ablation: p-persistence under a synchronized burst
# ----------------------------------------------------------------------

def run_a3(
    seed: int = 110,
    persistence: float = 0.25,
    stations: int = 5,
    frames_each: int = 8,
) -> Dict[str, float]:
    """One A3 condition: N stations burst-offer frames at one monitor."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    channel = RadioChannel(sim, streams)
    modem = ModemProfile(bit_rate=1200, txdelay=100 * MS, txtail=20 * MS)
    csma = CsmaParameters(persistence=persistence, slot_time=100 * MS)

    received = []
    channel.attach("MONITOR", received.append)

    frame = AX25Frame.ui(AX25Address("MON"), AX25Address("W7STA"),
                         PID_NO_L3, b"x" * 64).encode()
    generators = []
    for index in range(stations):
        station = RadioStation(
            sim, channel, f"W7STA-{index + 1}", modem=modem, csma=csma,
        )
        # Everyone's queue filled at t=0: the worst-case contention burst.
        generators.append(UiChatterGenerator(
            sim, station, frame, BurstArrivals(frames_each),
            limit=frames_each,
        ))
    for generator in generators:
        generator.start()
    sim.run_until_idle(max_events=2_000_000)

    offered = stations * frames_each
    return {
        "delivered": float(len(received)),
        "offered": float(offered),
        "collisions": float(channel.total_collisions),
        "transmissions": float(channel.total_transmissions),
        "drain_seconds": sim.now / SECOND,
    }


# ----------------------------------------------------------------------
# soak -- scenario-layer population load on the gateway testbed
# ----------------------------------------------------------------------

MIX_PRESETS: Dict[str, Tuple[GeneratorMix, ...]] = {
    # The paper's channel in miniature: IP users, legacy chatter, a BBS.
    "mixed": (
        GeneratorMix("ping", fraction=2, rate_per_minute=2),
        GeneratorMix("chatter", fraction=3, rate_per_minute=4,
                     arrivals="onoff", payload_bytes=96),
        GeneratorMix("udp", fraction=1, rate_per_minute=2,
                      payload_bytes=64),
        GeneratorMix("bbs", fraction=1, rate_per_minute=0.5),
    ),
    # Heavy-tailed bursts: the worst case for the gateway's serial line.
    "bursty": (
        GeneratorMix("chatter", fraction=3, rate_per_minute=6,
                     arrivals="onoff", payload_bytes=96),
        GeneratorMix("ping", fraction=1, rate_per_minute=2,
                     arrivals="pareto"),
    ),
}


def run_soak(
    seed: int = 0,
    stations: int = 20,
    duration_seconds: float = 120.0,
    mix: str = "mixed",
    address_filter: bool = False,
    rate_scale: float = 1.0,
) -> Dict[str, float]:
    """A population-scale scenario on the gateway testbed.

    ``rate_scale`` multiplies every component's offered rate, so the
    same preset can be run anywhere from idle to saturation: the preset
    rates are sized for ~20 stations, so a 50-station population wants
    a scale well below 1 to stay on the air at 1200 bps.
    """
    if mix not in MIX_PRESETS:
        raise ValueError(f"unknown mix preset {mix!r}")
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    components = tuple(
        replace(component,
                rate_per_minute=component.rate_per_minute * rate_scale)
        for component in MIX_PRESETS[mix]
    )
    scenario = Scenario(
        name=f"soak-{mix}", topology="gateway", stations=stations,
        duration_seconds=duration_seconds, mix=components,
        seed=seed, tnc_address_filter=address_filter,
    )
    return run_scenario(scenario)


# ----------------------------------------------------------------------
# chaos -- fault-injection soak with watchdog recovery (the E10 harness)
# ----------------------------------------------------------------------

def run_chaos(
    seed: int = 0,
    stations: int = 50,
    duration_seconds: float = 240.0,
    mix: str = "mixed",
    rate_scale: float = 0.25,
    watchdog: bool = True,
    shed_threshold_bytes: int = 2048,
) -> Dict[str, float]:
    """A population soak with the standard chaos fault schedule applied.

    The :func:`repro.faults.chaos_plan` preset wedges the gateway TNC,
    corrupts and drops serial bytes, fades and partitions stations, and
    flaps an interface -- all cleared by ~80% of the run.  The driver
    watchdog must recover the wedged TNC; after the scenario ends a
    post-recovery ping check verifies the gateway forwards end to end
    again.  Every metric is a pure function of (params, seed); the
    ``chaos`` CLI asserts that by digest across process layouts.
    """
    if mix not in MIX_PRESETS:
        raise ValueError(f"unknown mix preset {mix!r}")
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    components = tuple(
        replace(component,
                rate_per_minute=component.rate_per_minute * rate_scale)
        for component in MIX_PRESETS[mix]
    )
    scenario = Scenario(
        name=f"chaos-{mix}", topology="gateway", stations=stations,
        duration_seconds=duration_seconds, mix=components, seed=seed,
        watchdog=watchdog, shed_threshold_bytes=shed_threshold_bytes,
    )
    ip_count = sum(1 for c in scenario.station_allocation()
                   if c.kind in ("ping", "udp", "tcp"))
    station_names = [f"WL{i}" for i in range(min(ip_count, 2))]
    plan = chaos_plan(int(duration_seconds), gateway="gateway",
                      stations=station_names)
    scenario = replace(scenario, fault_plan=plan)
    run = build_scenario(scenario)
    metrics = run.run()

    # Post-recovery health: every fault has cleared by now, and the
    # watchdog has had time to reset the wedged TNC.  Pings from the
    # isolated PC through the gateway must succeed end to end.
    tb = run.testbed
    pinger = Pinger(tb.pc.stack)
    pinger.send(tb.ETHER_HOST_IP, count=3, interval=20 * SECOND)
    tb.sim.run(until=tb.sim.now + 90 * SECOND)
    metrics["post_fault_pings_sent"] = float(pinger.sent)
    metrics["post_fault_pings_ok"] = float(pinger.received)
    return metrics


# ----------------------------------------------------------------------
# obs -- span conservation + latency decomposition under load
# ----------------------------------------------------------------------

#: Mix for the observability gate: enough IP traffic to exercise every
#: span stage, enough chatter to keep the promiscuous-TNC noise paths hot.
OBS_MIX: Tuple[GeneratorMix, ...] = (
    GeneratorMix("ping", fraction=2, rate_per_minute=4),
    GeneratorMix("chatter", fraction=2, rate_per_minute=6,
                 arrivals="onoff", payload_bytes=96),
    GeneratorMix("udp", fraction=1, rate_per_minute=3, payload_bytes=64),
)


def run_obs(
    seed: int = 0,
    variant: str = "e3",
    stations: int = 8,
    duration_seconds: float = 150.0,
) -> Dict[str, float]:
    """A gateway scenario with the flight recorder attached.

    ``variant="e3"`` is the plain loaded-channel condition;
    ``variant="chaos"`` layers the standard fault schedule on top so
    drop/shed reasons (wedge, fade, backlog shed) actually occur.  The
    headline metric is ``obs_conservation_ok``: every born packet must
    terminate in exactly one of delivered/dropped/shed/in-flight.
    """
    if variant not in ("e3", "chaos"):
        raise ValueError(f"unknown obs variant {variant!r}")
    scenario = Scenario(
        name=f"obs-{variant}", topology="gateway", stations=stations,
        duration_seconds=duration_seconds, mix=OBS_MIX, seed=seed,
        observe=True,
    )
    if variant == "chaos":
        plan = chaos_plan(int(duration_seconds), gateway="gateway",
                          stations=["WL0"])
        scenario = replace(scenario, fault_plan=plan, watchdog=True,
                           shed_threshold_bytes=2048)
    run = build_scenario(scenario)
    metrics = run.run()
    recorder = run.recorder
    assert recorder is not None
    conserved = (recorder.conservation_ok()
                 and recorder.born_total > 0)
    metrics["obs_conservation_ok"] = 1.0 if conserved else 0.0
    return metrics


# ----------------------------------------------------------------------
# sanitize -- dynamic ordering + conservation checks (PR 5)
# ----------------------------------------------------------------------

def run_sanitize(
    seed: int = 0,
    variant: str = "e3",
    stations: int = 8,
    duration_seconds: float = 120.0,
    order_salt: int = 0xD1CE,
) -> Dict[str, float]:
    """The dynamic halves of RACE001 and CONS001 on a live scenario.

    Runs the same seeded scenario twice -- once on the stock FIFO
    tie-break, once on an :class:`~repro.sim.sanitizer.OrderShuffleSimulator`
    salted with ``order_salt`` -- and compares the order-sensitive metric
    subset; any difference is a hidden equal-timestamp ordering
    dependence the static RACE001 pass should have caught.  Both runs
    carry a :class:`~repro.sim.sanitizer.SimSanitizer` doing live span
    conservation checks, the dynamic counterpart of CONS001's static
    drop-accounting proof.  The headline metrics are
    ``sanitize_ordering_agree`` and ``sanitize_conservation_ok``.
    """
    if variant not in ("e3", "chaos"):
        raise ValueError(f"unknown sanitize variant {variant!r}")
    scenario = Scenario(
        name=f"sanitize-{variant}", topology="gateway", stations=stations,
        duration_seconds=duration_seconds, mix=OBS_MIX, seed=seed,
        sanitize=True,
    )
    if variant == "chaos":
        plan = chaos_plan(int(duration_seconds), gateway="gateway",
                          stations=["WL0"])
        scenario = replace(scenario, fault_plan=plan, watchdog=True,
                           shed_threshold_bytes=2048)
    base = build_scenario(scenario).run()
    salted = build_scenario(replace(scenario, order_salt=order_salt)).run()
    agree = ordering_comparable(base) == ordering_comparable(salted)
    conserved = (base["sanitizer_conservation_failures"] == 0
                 and salted["sanitizer_conservation_failures"] == 0
                 and base["obs_born_total"] > 0)
    metrics = dict(base)
    metrics["sanitize_ordering_agree"] = 1.0 if agree else 0.0
    metrics["sanitize_conservation_ok"] = 1.0 if conserved else 0.0
    metrics["sanitize_stale_spans_salted"] = salted["sanitizer_stale_spans"]
    return metrics


# ----------------------------------------------------------------------
# scale -- multi-fidelity sharded regional runner (PR 6)
# ----------------------------------------------------------------------

def run_scale(
    seed: int = 0,
    regions: int = 2,
    stations_per_region: int = 2,
    flow_stations: int = 200,
    duration_seconds: float = 60.0,
    fidelity: str = "frame",
) -> Dict[str, float]:
    """One sharded regional condition, run inline (procs=1).

    The harness already fans seeds across worker processes, and Python
    daemonic pool workers cannot fork grandchildren, so this entry
    always runs the shard loop inline; the ``python -m repro scale``
    gate is where 1/2/4-process layouts are compared by digest.
    """
    # Imported here, not at module top: repro.scale.regions pulls in the
    # workload generators, and the harness is imported by __main__ early.
    from repro.scale.regions import ScaleLayout
    from repro.scale.shard import run_sharded

    layout = ScaleLayout(
        regions=regions, stations_per_region=stations_per_region,
        flow_stations=flow_stations, duration_seconds=duration_seconds,
        fidelity=fidelity, seed=seed,
    )
    return run_sharded(layout, procs=1)


# ----------------------------------------------------------------------
# tournament -- recovery policies under hostile links (the §4.1 grid)
# ----------------------------------------------------------------------

#: Tournament workload: TCP transfers through the gateway (the §4.1
#: traffic) plus one terminal user on the BBS so the LAPB timer axis is
#: exercised on the same hostile channel.  Sized for 1200 bps: two
#: senders offering one 4-segment transfer a minute keeps the load just
#: under channel capacity (so goodput measures recovery, not queuing)
#: while multi-segment flights give the congestion policies something
#: to decide.
TOURNAMENT_MIX: Tuple[GeneratorMix, ...] = (
    GeneratorMix("tcp", fraction=2, rate_per_minute=1, payload_bytes=2048),
    GeneratorMix("bbs", fraction=1, rate_per_minute=3),
)


def run_tournament(
    seed: int = 0,
    rto: str = "adaptive",
    cc: str = "reno",
    link_timer: str = "fixed",
    plan: str = "storm",
    bit_rate: int = 1200,
    stations: int = 3,
    duration_seconds: float = 180.0,
) -> Dict[str, float]:
    """One tournament cell: a policy triple under one hostile-link plan.

    The gateway testbed runs TCP transfers (stations -> Ethernet discard
    sink) and a BBS terminal session while the named
    :func:`repro.faults.tournament_plan` batters the links; every TCP
    endpoint runs the (``rto``, ``cc``) policies and every LAPB link the
    ``link_timer`` policy.  The flight recorder is attached, so the cell
    reports span conservation alongside the headline goodput /
    transfer-latency / retransmit observables.
    """
    scenario = Scenario(
        name=f"tournament-{plan}", topology="gateway", stations=stations,
        duration_seconds=duration_seconds, mix=TOURNAMENT_MIX, seed=seed,
        bit_rate=bit_rate, tcp_rto=rto, tcp_cc=cc, lapb_timer=link_timer,
        observe=True,
        fault_plan=tournament_plan(plan, int(duration_seconds)),
    )
    run = build_scenario(scenario)
    metrics = run.run()
    metrics["goodput_bytes_per_s"] = (
        metrics.get("tcp_sink_bytes", 0.0) / duration_seconds)
    # Link-layer recovery health, summed over every LAPB connection the
    # scenario ran (the BBS's side and each terminal TNC's side).
    endpoints = []
    if run.bbs is not None:
        endpoints.append(run.bbs.endpoint)
    endpoints.extend(station.tnc.endpoint for station in run.extra_stations
                     if hasattr(station, "tnc"))
    for stat in ("i_sent", "i_rexmit", "rtt_samples", "i_abandoned"):
        metrics[f"lapb_{stat}"] = float(sum(
            conn.stats[stat]
            for endpoint in endpoints
            for conn in endpoint.connections.values()))
    recorder = run.recorder
    assert recorder is not None
    conserved = recorder.conservation_ok() and recorder.born_total > 0
    metrics["obs_conservation_ok"] = 1.0 if conserved else 0.0
    return metrics


# ----------------------------------------------------------------------
# perf -- the simulator as software (wall-clock; not seed-deterministic)
# ----------------------------------------------------------------------

def run_perf(seed: int = 0, loop_events: int = 100_000) -> Dict[str, float]:
    """Event-loop and end-to-end simulation throughput, wall-clock."""
    sim = Simulator()
    state = {"count": 0}

    def tick() -> None:
        state["count"] += 1
        if state["count"] < loop_events:
            sim.schedule(10, tick)

    sim.schedule(1, tick)
    started = time.perf_counter()
    sim.run_until_idle()
    loop_wall = time.perf_counter() - started

    tb = build_gateway_testbed(seed=seed)
    pinger = Pinger(tb.pc.stack)
    pinger.send("128.95.1.2", count=2, interval=30 * SECOND)
    started = time.perf_counter()
    tb.sim.run(until=200 * SECOND)
    session_wall = time.perf_counter() - started

    return {
        "event_loop_events_per_s": loop_events / max(loop_wall, 1e-9),
        "gateway_session_events": float(tb.sim.events_executed),
        "gateway_session_events_per_s":
            tb.sim.events_executed / max(session_wall, 1e-9),
        "gateway_pings_received": float(pinger.received),
    }


# ----------------------------------------------------------------------
# mc -- the model checker as software (wall-clock; not seed-deterministic)
# ----------------------------------------------------------------------

def run_mc(seed: int = 0, world: str = "lapb2", por: bool = True,
           dedup: bool = True, max_states: int = 50_000,
           max_depth: int = 400,
           max_wall_seconds: float = 60.0) -> Dict[str, float]:
    """One bounded exploration of a preset world, as flat metrics.

    The worlds are closed systems -- every branch is an explicit choice
    point, not a seeded draw -- so ``seed`` is accepted for harness
    compatibility and ignored.  Throughput numbers are wall-clock, which
    is why the experiment is registered non-deterministic.
    """
    from repro.check import Budget, Explorer, build_world

    del seed  # exploration is exhaustive, not sampled
    explorer = Explorer(
        lambda: build_world(world), por=por, dedup=dedup,
        budget=Budget(max_states=max_states, max_depth=max_depth,
                      max_wall_seconds=max_wall_seconds))
    result = explorer.run()
    return {
        "states": float(result.states),
        "transitions": float(result.transitions),
        "revisits": float(result.revisits),
        "sleep_skips": float(result.sleep_skips),
        "terminal_states": float(result.terminal_states),
        "cycles": float(result.cycles),
        "truncated": float(result.truncated),
        "max_depth_seen": float(result.max_depth_seen),
        "complete": 1.0 if result.complete else 0.0,
        "violations": float(len(result.violations)),
        "elapsed_s": result.elapsed,
        "states_per_second": result.states_per_second,
    }


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Experiment:
    """A named, sweepable experiment."""

    name: str
    description: str
    fn: Callable[..., Dict[str, float]]
    grid: Tuple[Mapping[str, object], ...]
    default_seed_count: int = 5
    deterministic: bool = True


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            name="e3",
            description="§3 gateway under background channel load, "
                        "promiscuous vs filtering TNC (workload-driven)",
            fn=run_e3,
            # 15 frames/min/station of Poisson chatter is ~0.6 erlangs:
            # heavy enough to show the §3 slowdown, light enough that
            # the gateway is degraded rather than unreachable.
            grid=tuple(
                {"load_frames_per_minute": load, "address_filter": filtered}
                for load in (0, 10, 15)
                for filtered in (False, True)
            ),
            default_seed_count=5,
        ),
        Experiment(
            name="a3",
            description="KISS p-persistence ablation under a "
                        "synchronized burst (workload-driven)",
            fn=run_a3,
            grid=tuple({"persistence": p} for p in (0.05, 0.25, 0.63, 1.0)),
            default_seed_count=5,
        ),
        Experiment(
            name="soak",
            description="population-scale mixed workload on the gateway "
                        "testbed (scenario layer)",
            fn=run_soak,
            grid=({"stations": 20, "mix": "mixed"},
                  {"stations": 20, "mix": "bursty"}),
            default_seed_count=5,
        ),
        Experiment(
            name="chaos",
            description="fault-injection soak: deterministic chaos "
                        "schedule + driver watchdog recovery (E10)",
            fn=run_chaos,
            grid=({"stations": 50},),
            default_seed_count=3,
        ),
        Experiment(
            name="obs",
            description="packet flight recorder: span conservation and "
                        "per-hop latency under load (plain + chaos)",
            fn=run_obs,
            grid=({"variant": "e3"}, {"variant": "chaos"}),
            default_seed_count=3,
        ),
        Experiment(
            name="sanitize",
            description="runtime sim sanitizer: order-shuffle agreement "
                        "and live span conservation (dynamic RACE/CONS)",
            fn=run_sanitize,
            grid=({"variant": "e3"}, {"variant": "chaos"}),
            default_seed_count=3,
        ),
        Experiment(
            name="scale",
            description="multi-fidelity sharded regional runner: frame "
                        "foreground + flow background, windowed sync",
            fn=run_scale,
            grid=({"regions": 2, "flow_stations": 200},),
            default_seed_count=3,
        ),
        Experiment(
            name="tournament",
            description="recovery-policy tournament: (rto x cc x "
                        "link-timer) under hostile-link fault plans "
                        "(§4.1 headline cells)",
            fn=run_tournament,
            # The registry default is the headline slice -- the §4.1
            # storm at 1200 bps across the policy corners; the
            # ``python -m repro tournament`` gate sweeps the full
            # (policy x plan x speed) cross product.
            grid=(
                {"rto": "fixed", "cc": "none", "plan": "storm"},
                {"rto": "adaptive", "cc": "none", "plan": "storm"},
                {"rto": "adaptive", "cc": "reno", "plan": "storm"},
                {"rto": "adaptive", "cc": "paced", "plan": "storm"},
            ),
            default_seed_count=3,
        ),
        Experiment(
            name="mc",
            description="bounded model checking of the preset worlds "
                        "(wall-clock rates; not seed-deterministic)",
            fn=run_mc,
            grid=({"world": "lapb2"}, {"world": "hidden3"},
                  {"world": "tcpxfer"}),
            default_seed_count=1,
            deterministic=False,
        ),
        Experiment(
            name="perf",
            description="simulator throughput microbench "
                        "(wall-clock rates; not seed-deterministic)",
            fn=run_perf,
            grid=({},),
            default_seed_count=3,
            deterministic=False,
        ),
    )
}
