"""Machine-readable benchmark results: the ``BENCH_*.json`` files.

One file per bench, written at the repository root (or wherever the
caller points), so the repo's performance trajectory can be tracked
across PRs by diffing or plotting these files.  The schema is stable
and flat on purpose:

.. code-block:: json

    {
      "bench": "e3",
      "schema": 1,
      "spec": {"seeds": [1, 2], "procs": 4, "grid": [...]},
      "runs": [
        {"params": {...}, "seed": 1, "metrics": {...},
         "runtime": {"pid": 123, "wall_seconds": 0.8}}
      ],
      "aggregates": [
        {"params": {...}, "metrics": {"m": {"n": 2, "mean": ..,
          "stdev": .., "ci95": .., "min": .., "max": ..}}}
      ]
    }

Per-seed ``metrics`` are seed-deterministic (identical across re-runs
and worker layouts); ``runtime`` is diagnostic only and excluded from
any reproducibility comparison.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.harness.runner import SweepResult

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


def metrics_digest(metrics: Mapping[str, float]) -> str:
    """sha256 over the canonical JSON of one run's metric dict.

    Two runs with identical metrics have identical digests; the chaos
    gate compares these across process layouts to prove determinism.
    """
    payload = json.dumps({str(k): float(v) for k, v in metrics.items()},
                         sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def sweep_digests(result: SweepResult) -> Dict[str, str]:
    """Per-cell metric digests, keyed ``<params_key>|seed=<seed>``."""
    return {
        f"{record.params_key()}|seed={record.seed}":
            metrics_digest(record.metrics)
        for record in result.records
    }


def bench_json_path(bench: str, directory: Union[str, Path] = ".") -> Path:
    """The conventional results path for a bench: ``BENCH_<name>.json``."""
    return Path(directory) / f"BENCH_{bench}.json"


def sweep_to_dict(result: SweepResult) -> Dict[str, object]:
    """Shape a :class:`SweepResult` into the stable JSON schema."""
    runs: List[Dict[str, object]] = [
        {
            "params": record.params,
            "seed": record.seed,
            "metrics": record.metrics,
            "runtime": {
                "pid": record.pid,
                "wall_seconds": round(record.wall_seconds, 6),
            },
        }
        for record in result.records
    ]
    aggregates: List[Dict[str, object]] = [
        {
            "params": params,
            "metrics": {
                name: stat.as_dict()
                for name, stat in sorted(result.aggregates[key].items())
            },
        }
        for key, params in result.grid_points()
    ]
    return {
        "bench": result.spec.bench,
        "schema": SCHEMA_VERSION,
        "spec": {
            "seeds": list(result.spec.seeds),
            "procs": result.spec.procs,
            "grid": [dict(params) for params in
                     (result.spec.grid or
                      [p for _, p in result.grid_points()])],
        },
        "runtime": {
            "wall_seconds": round(result.wall_seconds, 6),
            "workers_used": result.workers_used,
        },
        "runs": runs,
        "aggregates": aggregates,
    }


def write_bench_json(
    path: Union[str, Path],
    payload: Union[SweepResult, Dict[str, object]],
    bench: Optional[str] = None,
) -> Path:
    """Write a results file; accepts a sweep result or a pre-shaped dict.

    The pre-shaped-dict form is for callers outside the sweep runner
    (e.g. the pytest perf microbench) that assemble ``runs`` manually;
    ``bench`` and the schema version are stamped in for them.
    """
    if isinstance(payload, SweepResult):
        document = sweep_to_dict(payload)
    else:
        document = dict(payload)
        document.setdefault("schema", SCHEMA_VERSION)
        if bench is not None:
            document.setdefault("bench", bench)
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
