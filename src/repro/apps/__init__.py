"""Applications: the services the gateway made reachable.

"Telnet, FTP, and SMTP have all been successfully used across the
gateway."  Each protocol here is a working, line-based implementation
over the reproduction's own TCP/UDP -- simplified against its RFC where
1988 realism does not require the full grammar (documented per module)
-- plus the packet-radio-native services:

* :mod:`~repro.apps.ping` -- ICMP echo measurement.
* :mod:`~repro.apps.telnet` -- remote login with a tiny command shell.
* :mod:`~repro.apps.ftp` -- control + data-connection file transfer.
* :mod:`~repro.apps.smtp` -- mail with mailboxes.
* :mod:`~repro.apps.bbs` -- the packet BBS (AX.25 connected mode) with
  store-and-forward mail, as in the paper's introduction.
* :mod:`~repro.apps.axgateway` -- §2.4's application-layer gateway:
  AX.25 terminal users reach telnet/mail without speaking IP.
* :mod:`~repro.apps.callbook` -- §5's distributed callbook service.
* :mod:`~repro.apps.traceroute` -- VJ traceroute (UDP probes + ICMP).
"""

from repro.apps.axgateway import Ax25ApplicationGateway
from repro.apps.bbs import BbsMessage, BulletinBoard
from repro.apps.callbook import CallbookClient, CallbookDirectory, CallbookRecord, CallbookServer
from repro.apps.ftp import FileStore, FtpClient, FtpServer
from repro.apps.ping import Pinger
from repro.apps.smtp import Mailbox, SmtpClient, SmtpServer
from repro.apps.telnet import TelnetClient, TelnetServer
from repro.apps.traceroute import Hop, Traceroute

__all__ = [
    "Ax25ApplicationGateway",
    "BbsMessage",
    "BulletinBoard",
    "CallbookClient",
    "CallbookDirectory",
    "CallbookRecord",
    "CallbookServer",
    "FileStore",
    "FtpClient",
    "FtpServer",
    "Mailbox",
    "Pinger",
    "SmtpClient",
    "SmtpServer",
    "TelnetClient",
    "TelnetServer",
    "Traceroute",
    "Hop",
]
