"""The application-layer AX.25 gateway (§2.4 future work).

"In addition to providing a gateway between the packet radio network
and the rest of the Internet, we would like our gateway to be able to
serve as a gateway between applications running on top of other
protocols.  Such a gateway would be at the application layer, and
specific to remote login and electronic mail. ... Packets that are
received from the TNC that are not of type IP can be placed on the
input queue for the appropriate tty line.  A user program can then read
from this line, and maintain the state required to keep track of AX.25
level [2] connections.  Data can then be passed to a pseudo terminal to
support remote login, and to a separate program to support electronic
mail."

:class:`Ax25ApplicationGateway` is that user program.  It taps the
driver's non-IP frame hook, runs an AX.25 level-2 endpoint in "user
space", and bridges each terminal user's connection to either a telnet
session (remote login) or an SMTP submission (mail) carried over the
gateway's own IP stack.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ax25.frames import AX25Frame
from repro.ax25.lapb import LapbConnection, LapbEndpoint, LinkTimerPolicy
from repro.core.driver import PacketRadioInterface
from repro.inet.ip import IPError, IPv4Address
from repro.inet.netstack import NetStack
from repro.inet.sockets import TcpSocket
from repro.apps.smtp import SmtpClient
from repro.sim.clock import SECOND


class _UserSession:
    """One terminal user connected to the gateway's callsign."""

    MENU = "UW packet gateway: T host = telnet, M from to = mail, B = bye"

    def __init__(self, gateway: "Ax25ApplicationGateway",
                 conn: LapbConnection) -> None:
        self.gateway = gateway
        self.conn = conn
        self.buffer = bytearray()
        self.telnet: Optional[TcpSocket] = None
        self.mail_lines: Optional[List[str]] = None
        self.mail_from = ""
        self.mail_to: List[str] = []
        self.send(self.MENU)

    def send(self, text: str) -> None:
        """Send bytes to the peer."""
        self.conn.send((text + "\r").encode("latin-1"))

    # -- input ------------------------------------------------------------

    def data(self, chunk: bytes) -> None:
        """Consume bytes arriving from the remote end."""
        if self.telnet is not None:
            # Bridged mode: raw relay into the TCP connection.
            self.telnet.send(chunk.replace(b"\r", b"\r\n"))
            return
        self.buffer += chunk
        while True:
            index = min(
                (i for i in (self.buffer.find(b"\r"), self.buffer.find(b"\n")) if i >= 0),
                default=-1,
            )
            if index < 0:
                return
            line = bytes(self.buffer[:index]).decode("latin-1").strip()
            del self.buffer[: index + 1]
            self.line(line)

    def line(self, line: str) -> None:
        """Interpret one complete input line."""
        if self.mail_lines is not None:
            if line.upper() == "/EX":
                self._submit_mail()
            else:
                self.mail_lines.append(line)
            return
        words = line.split()
        if not words:
            return
        verb = words[0].upper()
        if verb == "T" and len(words) > 1:
            self._start_telnet(words[1])
        elif verb == "M" and len(words) > 2:
            self.mail_from = words[1]
            self.mail_to = words[2:]
            self.mail_lines = []
            self.send("Enter message, /EX to end")
        elif verb == "B":
            self.send("73!")
            self.conn.disconnect()
        else:
            self.send(self.MENU)

    # -- remote login bridge -----------------------------------------------

    def _start_telnet(self, host: str) -> None:
        try:
            address = IPv4Address.parse(host)
        except IPError:
            self.send(f"bad address {host}")
            return
        self.send(f"trying {host}...")
        self.telnet = TcpSocket.connect(self.gateway.stack, address, 23)
        self.telnet.on_data = self._telnet_data
        self.telnet.on_close = self._telnet_closed
        self.gateway.telnet_bridges += 1

    def _telnet_data(self, _chunk: bytes) -> None:
        assert self.telnet is not None
        data = self.telnet.recv()
        if data:
            self.conn.send(data.replace(b"\r\n", b"\r"))

    def _telnet_closed(self, _reason: str) -> None:
        self.telnet = None
        self.send("*** telnet session closed")
        self.send(self.MENU)

    # -- mail ---------------------------------------------------------------

    def _submit_mail(self) -> None:
        body = "\n".join(self.mail_lines or [])
        self.mail_lines = None
        relay = self.gateway.mail_relay
        if relay is None:
            self.send("no mail relay configured")
            return
        self.gateway.mail_submissions += 1

        def done(ok: bool) -> None:
            self.send("mail sent" if ok else "mail failed")
        SmtpClient(self.gateway.stack, relay, self.mail_from, self.mail_to,
                   body, on_done=done)
        self.send("submitting...")


class Ax25ApplicationGateway:
    """The §2.4 user program bridging AX.25 users to IP services."""

    def __init__(self, stack: NetStack, driver: PacketRadioInterface,
                 mail_relay: Optional[str] = None,
                 timer_policy: Optional[Callable[[], LinkTimerPolicy]] = None) -> None:
        self.stack = stack
        self.driver = driver
        self.mail_relay = mail_relay
        self.endpoint = LapbEndpoint(
            stack.sim, driver.callsign,
            send_frame=driver.send_ax25_frame,
            t1=5 * SECOND,
            timer_policy=timer_policy,
            tracer=stack.tracer,
        )
        self.endpoint.on_connect = self._connected
        self.endpoint.on_data = self._data
        self.endpoint.on_disconnect = self._disconnected
        driver.non_ip_handler = self._non_ip_frame
        self.sessions: Dict[str, _UserSession] = {}
        self.telnet_bridges = 0
        self.mail_submissions = 0

    def _non_ip_frame(self, frame: AX25Frame) -> None:
        self.endpoint.handle_frame(frame)

    def _connected(self, conn: LapbConnection, initiated: bool) -> None:
        if not initiated:
            self.sessions[str(conn.remote)] = _UserSession(self, conn)

    def _data(self, conn: LapbConnection, data: bytes, _pid: int) -> None:
        session = self.sessions.get(str(conn.remote))
        if session is not None:
            session.data(data)

    def _disconnected(self, conn: LapbConnection, _reason: str) -> None:
        session = self.sessions.pop(str(conn.remote), None)
        if session is not None and session.telnet is not None:
            session.telnet.close()
