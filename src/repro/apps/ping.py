"""ICMP echo measurement (ping).

Used by the quickstart example and by several benchmarks to measure
round-trip time through the gateway.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.inet import icmp as icmp_mod
from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.sim.clock import SECOND


class Pinger:
    """Sends a train of echo requests and records per-reply RTTs."""

    def __init__(self, stack: NetStack) -> None:
        self.stack = stack
        self.sim = stack.sim
        # Idents need only be unique per stack (replies are demuxed by
        # destination host first, ident second).  A per-stack counter
        # keeps the wire bytes a pure function of the run: a class
        # counter leaks interpreter history -- every Pinger ever
        # created shifts later idents, and an ident byte landing on
        # FEND/FESC changes KISS escaping and thus serial byte counts.
        self.ident = 100 + len(stack.icmp_listeners)
        self._sent_at: Dict[int, int] = {}
        self._next_sequence = 0
        self.rtts_us: List[int] = []
        self.sent = 0
        self.received = 0
        stack.icmp_listeners.append(self._icmp)

    def send(self, destination: "IPv4Address | str", count: int = 1,
             interval: int = 1 * SECOND, payload_size: int = 56) -> None:
        """Schedule ``count`` echo requests, ``interval`` apart."""
        destination = IPv4Address.coerce(destination)
        for index in range(count):
            self.sim.schedule(
                index * interval, self.send_one, destination,
                payload_size, label="ping",
            )

    def send_one(self, destination: "IPv4Address | str",
                 payload_size: int = 56) -> None:
        """Send a single echo request now (sequence numbers never repeat)."""
        destination = IPv4Address.coerce(destination)
        sequence = self._next_sequence
        self._next_sequence += 1
        self._sent_at[sequence] = self.sim.now
        self.sent += 1
        message = icmp_mod.echo_request(self.ident, sequence, b"\x2a" * payload_size)
        self.stack.send_icmp(message, destination)

    def _icmp(self, message: icmp_mod.IcmpMessage, source: IPv4Address) -> None:
        if message.icmp_type != icmp_mod.ICMP_ECHO_REPLY:
            return
        ident, sequence = icmp_mod.echo_fields(message)
        if ident != self.ident:
            return
        sent_at = self._sent_at.pop(sequence, None)
        if sent_at is None:
            return
        self.received += 1
        rtt = self.sim.now - sent_at
        self.rtts_us.append(rtt)
        tracer = self.stack.tracer
        if tracer is not None and tracer.flight is not None:
            tracer.flight.instruments.histogram("rtt_us").record(rtt)

    @property
    def lost(self) -> int:
        """Requests that never got a reply."""
        return self.sent - self.received

    def mean_rtt_seconds(self) -> Optional[float]:
        """Mean round-trip time in seconds; None if no replies."""
        if not self.rtts_us:
            return None
        return sum(self.rtts_us) / len(self.rtts_us) / SECOND
