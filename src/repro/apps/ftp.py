"""File transfer: an FTP with a control and a data connection.

Faithful to the RFC 959 *architecture* -- commands ride a control
connection, file bytes ride a separate data connection opened by the
server toward the port the client advertised with PORT -- with a
reduced grammar: USER, PORT, RETR, STOR, LIST, QUIT, and three-digit
reply codes.  That is what BBS users did over the gateway: "we have
used the gateway for file transfer ... in both directions."
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.inet.sockets import TcpServerSocket, TcpSocket
from repro.inet.tcp import RtoPolicy

FTP_PORT = 21


class FileStore:
    """The named files a host serves and receives."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None) -> None:
        self.files: Dict[str, bytes] = dict(files or {})

    def get(self, name: str) -> Optional[bytes]:
        """Look up an item; None when absent."""
        return self.files.get(name)

    def put(self, name: str, data: bytes) -> None:
        """Store an item."""
        self.files[name] = data

    def listing(self) -> str:
        """Human-readable listing of the contents."""
        return "\r\n".join(
            f"{name} {len(data)}" for name, data in sorted(self.files.items())
        )


class _FtpServerSession:
    def __init__(self, server: "FtpServer", control: TcpSocket) -> None:
        self.server = server
        self.control = control
        self.username: Optional[str] = None
        self.data_port: Optional[int] = None
        self._stor_name: Optional[str] = None
        self._stor_buffer = bytearray()
        control.on_data = self._on_control_data
        self._reply(220, f"{server.stack.hostname} FTP ready")

    def _on_control_data(self, _chunk: bytes) -> None:
        self._pump()

    def _reply(self, code: int, text: str) -> None:
        self.control.send(f"{code} {text}\r\n".encode())

    def _pump(self) -> None:
        while True:
            line = self.control.read_line()
            if line is None:
                return
            self._command(line)

    def _command(self, line: str) -> None:
        words = line.split(None, 1)
        if not words:
            return
        verb = words[0].upper()
        arg = words[1] if len(words) > 1 else ""
        handler = {
            "USER": self._user, "PORT": self._port, "RETR": self._retr,
            "STOR": self._stor, "LIST": self._list, "QUIT": self._quit,
        }.get(verb)
        if handler is None:
            self._reply(502, "command not implemented")
            return
        handler(arg)

    def _user(self, arg: str) -> None:
        self.username = arg or "anonymous"
        self._reply(230, f"user {self.username} logged in")

    def _port(self, arg: str) -> None:
        try:
            self.data_port = int(arg)
        except ValueError:
            self._reply(501, "bad port")
            return
        self._reply(200, "PORT ok")

    def _open_data(self) -> Optional[TcpSocket]:
        remote_ip = self.control.connection.remote_ip
        if self.data_port is None or remote_ip is None:
            self._reply(425, "use PORT first")
            return None
        return TcpSocket.connect(self.server.stack, remote_ip, self.data_port)

    def _retr(self, arg: str) -> None:
        data = self.server.store.get(arg)
        if data is None:
            self._reply(550, f"{arg}: no such file")
            return
        socket = self._open_data()
        if socket is None:
            return
        self._reply(150, f"opening data connection for {arg} ({len(data)} bytes)")
        socket.on_connect = partial(self._send_all, socket, data)
        socket.on_close = self._transfer_complete

    def _send_all(self, socket: TcpSocket, data: bytes) -> None:
        socket.send(data)
        socket.close()

    def _transfer_complete(self, _reason: str) -> None:
        self._reply(226, "transfer complete")

    def _stor(self, arg: str) -> None:
        socket = self._open_data()
        if socket is None:
            return
        self._reply(150, f"ready for {arg}")
        self._stor_name = arg
        self._stor_buffer = bytearray()
        socket.on_data = partial(self._stor_data, socket)
        socket.on_close = partial(self._stor_close, socket)

    def _stor_data(self, socket: TcpSocket, _chunk: bytes) -> None:
        self._stor_buffer.extend(socket.recv())

    def _stor_close(self, socket: TcpSocket, _reason: str) -> None:
        self.server.store.put(self._stor_name or "", bytes(self._stor_buffer))
        socket.close()
        self._reply(226, "transfer complete")

    def _list(self, _arg: str) -> None:
        socket = self._open_data()
        if socket is None:
            return
        self._reply(150, "directory listing")
        listing = self.server.store.listing().encode() + b"\r\n"
        socket.on_connect = partial(self._send_all, socket, listing)
        socket.on_close = self._transfer_complete

    def _quit(self, _arg: str) -> None:
        self._reply(221, "goodbye")
        self.control.close()


class FtpServer:
    """ftpd with a per-host :class:`FileStore`."""

    def __init__(self, stack: NetStack, store: Optional[FileStore] = None,
                 port: int = FTP_PORT) -> None:
        self.stack = stack
        self.store = store if store is not None else FileStore()
        self.sessions: List[_FtpServerSession] = []
        self.server = TcpServerSocket(stack, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        self.sessions.append(_FtpServerSession(self, socket))


class FtpClient:
    """Scripted FTP client: log in, then GET or PUT one file at a time.

    Operations are queued; each starts when the previous one completes.
    Results land in :attr:`retrieved` (name -> bytes) and :attr:`log`.
    """

    def __init__(self, stack: NetStack, remote: "IPv4Address | str",
                 port: int = FTP_PORT,
                 rto_policy: Optional[RtoPolicy] = None,
                 username: str = "guest") -> None:
        self.stack = stack
        self.retrieved: Dict[str, bytes] = {}
        self.log: List[str] = []
        self._queue: List[tuple] = []
        self._busy = True  # until logged in
        self._data_server: Optional[TcpServerSocket] = None
        self._data_buffer = bytearray()
        self._active: Optional[tuple] = None
        self.transfers_complete = 0

        self.control = TcpSocket.connect(stack, remote, port, rto_policy=rto_policy)
        self.control.on_data = self._on_control_data
        self._username = username
        self._data_port = stack.tcp.allocate_port()

    # -- public API ------------------------------------------------------

    def get(self, name: str) -> None:
        """Look up an item; None when absent."""
        self._queue.append(("RETR", name, None))
        self._maybe_start()

    def put(self, name: str, data: bytes) -> None:
        """Store an item."""
        self._queue.append(("STOR", name, data))
        self._maybe_start()

    def quit(self) -> None:
        """Finish and close the session."""
        self._queue.append(("QUIT", "", None))
        self._maybe_start()

    # -- control-connection machinery -------------------------------------

    def _on_control_data(self, _chunk: bytes) -> None:
        self._pump()

    def _data_chunk(self, socket: TcpSocket, _chunk: bytes) -> None:
        self._data_buffer.extend(socket.recv())

    def _data_close(self, socket: TcpSocket, _reason: str) -> None:
        socket.close()

    def _pump(self) -> None:
        while True:
            line = self.control.read_line()
            if line is None:
                return
            self.log.append(line)
            self._reply(line)

    def _reply(self, line: str) -> None:
        code = line[:3]
        if code == "220":
            self.control.send_line(f"USER {self._username}")
        elif code == "230":
            self._listen_for_data()
            self.control.send_line(f"PORT {self._data_port}")
        elif code == "200":
            self._busy = False
            self._maybe_start()
        elif code == "226":
            self._finish_transfer()
        elif code in ("550", "425", "501", "502"):
            self._active = None
            self._busy = False
            self._maybe_start()

    def _listen_for_data(self) -> None:
        if self._data_server is None:
            self._data_server = TcpServerSocket(
                self.stack, self._data_port, self._data_accept
            )

    def _data_accept(self, socket: TcpSocket) -> None:
        self._data_buffer.clear()
        if self._active is not None and self._active[0] == "STOR":
            payload = self._active[2]
            socket.send(payload)
            socket.close()
        else:
            socket.on_data = partial(self._data_chunk, socket)
            # Close our half once the sender finishes, so the sender's
            # FIN handshake (and its "226 transfer complete") completes.
            socket.on_close = partial(self._data_close, socket)

    def _maybe_start(self) -> None:
        if self._busy or self._active is not None or not self._queue:
            return
        self._active = self._queue.pop(0)
        verb, name, _data = self._active
        if verb == "QUIT":
            self.control.send_line("QUIT")
            self._active = None
            return
        self.control.send_line(f"{verb} {name}")

    def _finish_transfer(self) -> None:
        if self._active is None:
            return
        verb, name, _data = self._active
        if verb == "RETR":
            self.retrieved[name] = bytes(self._data_buffer)
        self.transfers_complete += 1
        self._active = None
        self._maybe_start()
