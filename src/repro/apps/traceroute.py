"""Traceroute: mapping the path hop by hop.

Classic Van Jacobson technique, era-appropriate (traceroute shipped in
1988): send UDP probes to an unlikely high port with increasing TTL;
each gateway whose TTL check fires answers with ICMP time exceeded,
revealing itself; the destination answers with ICMP port unreachable,
ending the trace.  Useful here to *show* the §4.2 dogleg through the
wrong coast's gateway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.inet import icmp as icmp_mod
from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.inet.sockets import UdpSocket
from repro.sim.clock import SECOND
from repro.sim.engine import Event

#: The traditional "unlikely" base port.
PROBE_PORT_BASE = 33434


@dataclass
class Hop:
    """One row of the trace."""

    ttl: int
    address: Optional[IPv4Address]
    rtt_us: Optional[int]
    reached: bool = False

    def render(self) -> str:
        """Render as human-readable text."""
        if self.address is None:
            return f"{self.ttl:>2}  * (timeout)"
        rtt = f"{self.rtt_us / 1000:.0f} ms" if self.rtt_us is not None else "?"
        mark = "  <-- destination" if self.reached else ""
        return f"{self.ttl:>2}  {self.address}  {rtt}{mark}"


class Traceroute:
    """One trace toward ``destination``.

    Probes run sequentially (one per TTL); ``on_complete(hops)`` fires
    when the destination answers, the TTL limit is reached, or a probe
    times out ``max_timeouts`` times in a row.
    """

    def __init__(self, stack: NetStack, destination: "IPv4Address | str",
                 max_ttl: int = 12, probe_timeout: int = 30 * SECOND,
                 on_complete: Optional[Callable[[List[Hop]], None]] = None) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.destination = IPv4Address.coerce(destination)
        self.max_ttl = max_ttl
        self.probe_timeout = probe_timeout
        self.on_complete = on_complete
        self.hops: List[Hop] = []
        self.finished = False
        self._current_ttl = 0
        self._sent_at = 0
        self._timer: Optional[Event] = None
        self._socket = UdpSocket(stack)
        stack.icmp_listeners.append(self._icmp)

    def start(self) -> None:
        """Begin the measurement/operation."""
        self._next_probe()

    # ------------------------------------------------------------------

    def _next_probe(self) -> None:
        if self.finished:
            return
        self._current_ttl += 1
        if self._current_ttl > self.max_ttl:
            self._finish()
            return
        self._sent_at = self.sim.now
        from repro.inet.ip import PROTO_UDP
        from repro.inet.udp import UdpDatagram
        route = self.stack.routes.lookup(self.destination)
        if route is None:
            self._finish()
            return
        source = self.stack.source_address_for(route)
        probe = UdpDatagram(self._socket.port,
                            PROBE_PORT_BASE + self._current_ttl, b"probe")
        self.stack.ip_output(
            self.destination, PROTO_UDP,
            probe.encode(source, self.destination),
            source=source, ttl=self._current_ttl,
        )
        self._timer = self.sim.schedule(
            self.probe_timeout, self._probe_timed_out,
            label=f"traceroute ttl={self._current_ttl}",
        )

    def _probe_timed_out(self) -> None:
        self._timer = None
        self.hops.append(Hop(self._current_ttl, None, None))
        self._next_probe()

    def _icmp(self, message: icmp_mod.IcmpMessage, source: IPv4Address) -> None:
        if self.finished or self._timer is None:
            return
        quoted = icmp_mod.quoted_destination(message)
        if quoted is None or quoted.value != self.destination.value:
            return
        if message.icmp_type == icmp_mod.ICMP_TIME_EXCEEDED:
            reached = False
        elif (message.icmp_type == icmp_mod.ICMP_UNREACHABLE
              and message.code == icmp_mod.UNREACH_PORT):
            reached = True
        else:
            return
        self._timer.cancel()
        self._timer = None
        self.hops.append(Hop(self._current_ttl, source,
                             self.sim.now - self._sent_at, reached=reached))
        if reached:
            self._finish()
        else:
            self._next_probe()

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._socket.close()
        if self.on_complete is not None:
            self.on_complete(self.hops)

    def render(self) -> str:
        """Render as human-readable text."""
        lines = [f"traceroute to {self.destination}"]
        lines.extend(hop.render() for hop in self.hops)
        return "\n".join(lines)
