"""The packet bulletin board system.

"Another development was that some users connected their TNCs to
computers on which they ran packet bulletin board software. ... Users
with terminals were able to leave messages and read messages. ... The
BBSs would forward mail to other BBSs for non-local users using packet
radio."

The BBS speaks AX.25 connected mode (level 2) directly -- terminal
users connect to its callsign with a stock TNC.  Commands follow the
W0RLI-style conventions: ``L`` list, ``R n`` read, ``S CALL`` send
(body ends with ``/EX``), ``B`` bye, ``H`` help.  Mail addressed
``user@host`` can be handed to an Internet mail hook (the gateway's
SMTP client) -- the interconnection the paper exists to provide.
Store-and-forward to a peer BBS replays an ``S``-command session over
a fresh AX.25 connection, as real forwarding protocols did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ax25.address import AX25Address, AX25Path
from repro.ax25.frames import AX25Frame, FrameError
from repro.ax25.lapb import LapbConnection, LapbEndpoint, LinkTimerPolicy
from repro.radio.channel import RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.radio.station import RadioStation
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@dataclass
class BbsMessage:
    """One stored message."""

    number: int
    to: str
    origin: str
    body: str
    forwarded: bool = False


class _Session:
    """Per-connection interpreter state."""

    def __init__(self, bbs: "BulletinBoard", conn: LapbConnection) -> None:
        self.bbs = bbs
        self.conn = conn
        self.buffer = bytearray()
        self.composing_to: Optional[str] = None
        self.compose_lines: List[str] = []

    def data(self, chunk: bytes) -> None:
        """Consume bytes arriving from the remote end."""
        self.buffer += chunk
        while True:
            index = -1
            for terminator in (0x0D, 0x0A):
                found = self.buffer.find(bytes((terminator,)))
                if found >= 0 and (index < 0 or found < index):
                    index = found
            if index < 0:
                return
            raw = bytes(self.buffer[:index])
            del self.buffer[: index + 1]
            self.line(raw.decode("latin-1").strip())

    def send(self, text: str) -> None:
        """Send bytes to the peer."""
        self.conn.send((text + "\r").encode("latin-1"))

    def line(self, line: str) -> None:
        """Interpret one complete input line."""
        if self.composing_to is not None:
            if line.upper() == "/EX":
                self.bbs.store_message(self.composing_to, str(self.conn.remote),
                                       "\n".join(self.compose_lines))
                self.send("Message saved")
                self.composing_to = None
                self.compose_lines = []
                self.send(self.bbs.PROMPT)
            else:
                self.compose_lines.append(line)
            return
        words = line.split()
        if not words:
            self.send(self.bbs.PROMPT)
            return
        verb = words[0].upper()
        if verb == "L":
            self.cmd_list()
        elif verb == "R" and len(words) > 1:
            self.cmd_read(words[1])
        elif verb == "S" and len(words) > 1:
            self.composing_to = words[1].upper()
            self.send("Enter message, /EX to end")
        elif verb == "B":
            self.send("73!")
            self.conn.disconnect()
            return
        elif verb == "H":
            self.send("L=list R n=read S call=send B=bye")
            self.send(self.bbs.PROMPT)
        else:
            self.send("?" )
            self.send(self.bbs.PROMPT)

    def cmd_list(self) -> None:
        """The L command: list stored messages."""
        if not self.bbs.messages:
            self.send("No messages")
        for message in self.bbs.messages:
            self.send(f"{message.number:>3} {message.to:<9} fm {message.origin}")
        self.send(self.bbs.PROMPT)

    def cmd_read(self, number_text: str) -> None:
        """The R command: print one message."""
        try:
            number = int(number_text)
        except ValueError:
            self.send("?")
            self.send(self.bbs.PROMPT)
            return
        for message in self.bbs.messages:
            if message.number == number:
                self.send(f"To: {message.to}  Fm: {message.origin}")
                for body_line in message.body.split("\n"):
                    self.send(body_line)
                self.send(self.bbs.PROMPT)
                return
        self.send("No such message")
        self.send(self.bbs.PROMPT)


class BulletinBoard:
    """A BBS station on the shared channel."""

    PROMPT = ">"

    def __init__(
        self,
        sim: Simulator,
        channel: RadioChannel,
        callsign: "AX25Address | str",
        modem: Optional[ModemProfile] = None,
        csma: Optional[CsmaParameters] = None,
        tracer: Optional[Tracer] = None,
        timer_policy: Optional[Callable[[], LinkTimerPolicy]] = None,
    ) -> None:
        self.sim = sim
        self.callsign = (
            callsign if isinstance(callsign, AX25Address) else AX25Address.parse(callsign)
        )
        self.tracer = tracer
        self.station = RadioStation(
            sim, channel, str(self.callsign), modem=modem, csma=csma,
            on_frame=self._from_air,
        )
        self.endpoint = LapbEndpoint(
            sim, self.callsign,
            send_frame=self.station.send_frame_object,
            t1=5 * SECOND,
            timer_policy=timer_policy,
            tracer=tracer,
        )
        self.endpoint.on_connect = self._connected
        self.endpoint.on_data = self._data
        self.endpoint.on_disconnect = self._disconnected
        self.messages: List[BbsMessage] = []
        self._sessions: Dict[str, _Session] = {}
        self._next_number = 1
        #: Hook for mail addressed ``user@host``: ``f(message) -> bool``.
        self.internet_mail_hook: Optional[Callable[[BbsMessage], bool]] = None
        self.forwarded_to_internet = 0
        self._forwarder: Optional[_Forwarder] = None

    # ------------------------------------------------------------------
    # message store
    # ------------------------------------------------------------------

    def store_message(self, to: str, origin: str, body: str) -> BbsMessage:
        """Store a message; forwards @internet mail via the hook."""
        message = BbsMessage(self._next_number, to.upper(), origin, body)
        self._next_number += 1
        self.messages.append(message)
        if "@" in to and self.internet_mail_hook is not None:
            if self.internet_mail_hook(message):
                message.forwarded = True
                self.forwarded_to_internet += 1
        if self.tracer is not None:
            self.tracer.log("bbs.store", str(self.callsign),
                            f"#{message.number} to {message.to}")
        return message

    def pending_for(self, bbs_suffix: str) -> List[BbsMessage]:
        """Messages addressed ``CALL@SUFFIX`` awaiting forwarding."""
        suffix = bbs_suffix.upper()
        return [
            message for message in self.messages
            if not message.forwarded and message.to.endswith(f"@{suffix}")
        ]

    def forward_to(self, remote: "AX25Address | str",
                   path: AX25Path = AX25Path()) -> int:
        """Forward every message addressed ``@remote`` over the air.

        Returns the number of messages handed to the forwarder; they are
        marked forwarded as the remote accepts each one.
        """
        remote = (
            remote if isinstance(remote, AX25Address) else AX25Address.parse(remote)
        )
        pending = self.pending_for(remote.callsign)
        if not pending:
            return 0
        self._forwarder = _Forwarder(self, remote, path, pending)
        return len(pending)

    # ------------------------------------------------------------------
    # link callbacks
    # ------------------------------------------------------------------

    def _connected(self, conn: LapbConnection, initiated: bool) -> None:
        if initiated:
            return  # outgoing forwarding connection; _Forwarder drives it
        session = _Session(self, conn)
        self._sessions[str(conn.remote)] = session
        session.send(f"[{self.callsign} BBS]")
        session.send("L=list R n=read S call=send B=bye H=help")
        session.send(self.PROMPT)

    def _data(self, conn: LapbConnection, data: bytes, pid: int) -> None:
        if self._forwarder is not None and conn is self._forwarder.conn:
            self._forwarder.data(data)
            return
        session = self._sessions.get(str(conn.remote))
        if session is not None:
            session.data(data)

    def _disconnected(self, conn: LapbConnection, reason: str) -> None:
        self._sessions.pop(str(conn.remote), None)
        if self._forwarder is not None and conn is self._forwarder.conn:
            self._forwarder = None

    def _from_air(self, payload: bytes) -> None:
        try:
            frame = AX25Frame.decode(payload)
        except FrameError:
            return
        if not frame.path.fully_repeated:
            return
        self.endpoint.handle_frame(frame)


class _Forwarder:
    """Drives a scripted S-command session against a peer BBS."""

    def __init__(self, bbs: BulletinBoard, remote: AX25Address,
                 path: AX25Path, pending: List[BbsMessage]) -> None:
        self.bbs = bbs
        self.pending = list(pending)
        self.current: Optional[BbsMessage] = None
        self.buffer = bytearray()
        self.conn = bbs.endpoint.connect(remote, path)
        self.awaiting_prompt = True

    def data(self, chunk: bytes) -> None:
        """Consume bytes arriving from the remote end."""
        self.buffer += chunk
        text = self.buffer.decode("latin-1")
        if self.current is None:
            if text.rstrip().endswith(self.bbs.PROMPT):
                self.buffer.clear()
                self._start_next()
        else:
            if "Message saved" in text:
                self.current.forwarded = True
                self.current = None
                self.buffer.clear()
                self._start_next()

    def _start_next(self) -> None:
        if not self.pending:
            self.conn.send(b"B\r")
            return
        self.current = self.pending.pop(0)
        local_part = self.current.to.split("@")[0]
        lines = [f"S {local_part}"] + self.current.body.split("\n") + ["/EX"]
        self.conn.send(("\r".join(lines) + "\r").encode("latin-1"))
