"""Remote login: a line-oriented telnet.

A deliberately small telnet: no option negotiation (the 1988 PC clients
mostly did NVT-with-no-options anyway), just a login prompt and a tiny
shell whose commands are pluggable.  It is the service the paper's
demo exercised first: "we were able to telnet from an isolated IBM PC
to a system that was on our Ethernet by way of the new gateway."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.inet.netstack import NetStack
from repro.inet.sockets import TcpServerSocket, TcpSocket
from repro.inet.tcp import RtoPolicy
from repro.sim.clock import format_time

TELNET_PORT = 23


class TelnetSession:
    """Server side of one login."""

    def __init__(self, server: "TelnetServer", socket: TcpSocket) -> None:
        self.server = server
        self.socket = socket
        self.username: Optional[str] = None
        socket.on_data = self._on_socket_data
        socket.send(f"{server.hostname} Ultrix 2.0\r\nlogin: ".encode())

    def _on_socket_data(self, _chunk: bytes) -> None:
        self._pump()

    def _pump(self) -> None:
        while True:
            line = self.socket.read_line()
            if line is None:
                return
            self._handle_line(line)

    def _handle_line(self, line: str) -> None:
        if self.username is None:
            self.username = line.strip() or "guest"
            self.socket.send(f"Welcome {self.username}\r\n% ".encode())
            return
        words = line.split()
        if not words:
            self.socket.send(b"% ")
            return
        command, args = words[0], words[1:]
        if command == "logout" or command == "exit":
            self.socket.send(b"goodbye\r\n")
            self.socket.close()
            return
        handler = self.server.commands.get(command)
        if handler is None:
            self.socket.send(f"{command}: not found\r\n% ".encode())
            return
        output = handler(self, args)
        self.socket.send(output.encode() + b"\r\n% ")


class TelnetServer:
    """telnetd: listens on port 23, spawns sessions."""

    def __init__(self, stack: NetStack, port: int = TELNET_PORT,
                 rto_policy_factory: Optional[Callable[[], RtoPolicy]] = None) -> None:
        self.stack = stack
        self.hostname = stack.hostname
        self.sessions: List[TelnetSession] = []
        #: command name -> f(session, args) -> output string
        self.commands: Dict[str, Callable[[TelnetSession, List[str]], str]] = {
            "echo": self._cmd_echo,
            "hostname": self._cmd_hostname,
            "date": self._cmd_date,
            "who": self._cmd_who,
        }
        rto = rto_policy_factory() if rto_policy_factory is not None else None
        self.server = TcpServerSocket(stack, port, self._accept, rto_policy=rto)

    def _accept(self, socket: TcpSocket) -> None:
        self.sessions.append(TelnetSession(self, socket))

    def _cmd_who(self, _session: TelnetSession, _args: List[str]) -> str:
        users = [s.username or "?" for s in self.sessions if not s.socket.closed]
        return " ".join(users) if users else "nobody"

    def _cmd_echo(self, _session: TelnetSession, args: List[str]) -> str:
        return " ".join(args)

    def _cmd_hostname(self, _session: TelnetSession, _args: List[str]) -> str:
        return self.hostname

    def _cmd_date(self, _session: TelnetSession, _args: List[str]) -> str:
        return f"simtime {format_time(self.stack.sim.now)}"


class TelnetClient:
    """Scripted telnet client: queue lines, collect everything printed."""

    def __init__(self, stack: NetStack, remote: str, port: int = TELNET_PORT,
                 rto_policy: Optional[RtoPolicy] = None) -> None:
        self.stack = stack
        self.socket = TcpSocket.connect(stack, remote, port, rto_policy=rto_policy)
        self.transcript = bytearray()
        self._script: List[str] = []
        self.socket.on_data = self._on_data
        self.socket.on_connect = self._maybe_send

    def type_lines(self, lines: List[str]) -> None:
        """Queue lines; each is sent when the previous output arrives."""
        self._script.extend(lines)
        self._maybe_send()

    def _on_data(self, data: bytes) -> None:
        self.transcript += bytes(self.socket.recv_buffer)
        self.socket.recv_buffer.clear()
        self._maybe_send()

    def _maybe_send(self) -> None:
        # Send the next scripted line whenever the server has prompted.
        if not self.socket.established or not self._script:
            return
        text = self.transcript.decode("latin-1")
        if text.endswith(": ") or text.endswith("% "):
            line = self._script.pop(0)
            self.socket.send_line(line)
            self.transcript += f"<{line}>\r\n".encode()

    def transcript_text(self) -> str:
        """The full session transcript as text."""
        return self.transcript.decode("latin-1")
