"""The distributed callbook (§5 discussion).

"With a distributed callbook server, data for a particular country, or
part of a country, could be maintained on a system local to that area.
Given a call sign, an application running on a PC could determine what
area the call sign is from, and then send off a query to the
appropriate server."

The area of a US callsign is its district digit (N7AKR -> area 7).  A
:class:`CallbookDirectory` maps areas to server addresses; the client
resolves the area locally and queries only the responsible server --
exactly the partitioning the paper sketches.  Transport is a one-shot
UDP request/response with retry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.inet.ip import IPv4Address
from repro.inet.netstack import NetStack
from repro.inet.sockets import UdpSocket
from repro.sim.clock import SECOND
from repro.sim.engine import Event

CALLBOOK_PORT = 8778

_DIGIT_RE = re.compile(r"\d")


def _ignore_record(_record: "Optional[CallbookRecord]") -> None:
    """Default no-op lookup callback (a module-level def snapshots safely)."""


def call_area(callsign: str) -> Optional[int]:
    """The district digit of a callsign (None if it has no digit)."""
    match = _DIGIT_RE.search(callsign.upper().split("-")[0])
    return int(match.group()) if match else None


@dataclass(frozen=True)
class CallbookRecord:
    """One callbook entry.

    ``bearing_degrees`` is the user-added geographic extra the paper
    muses about ("have their antennas automatically rotated to the
    correct bearing").
    """

    callsign: str
    name: str
    city: str
    bearing_degrees: Optional[int] = None

    def encode(self) -> str:
        """Serialise to the wire byte string."""
        bearing = "" if self.bearing_degrees is None else str(self.bearing_degrees)
        return f"{self.callsign.upper()}|{self.name}|{self.city}|{bearing}"

    @classmethod
    def decode(cls, text: str) -> "CallbookRecord":
        """Parse the wire byte string; raises on malformed input."""
        callsign, name, city, bearing = (text.split("|") + ["", "", "", ""])[:4]
        return cls(callsign, name, city,
                   int(bearing) if bearing.strip() else None)


class CallbookServer:
    """Serves records for one call area over UDP."""

    def __init__(self, stack: NetStack, area: int,
                 port: int = CALLBOOK_PORT) -> None:
        self.stack = stack
        self.area = area
        self.records: Dict[str, CallbookRecord] = {}
        self.queries_answered = 0
        self.queries_missed = 0
        self.socket = UdpSocket(stack, port)
        self.socket.on_datagram = self._query

    def add(self, record: CallbookRecord) -> None:
        """Add one item."""
        self.records[record.callsign.upper()] = record

    def _query(self, payload: bytes, source: IPv4Address, source_port: int) -> None:
        text = payload.decode("latin-1").strip()
        if not text.upper().startswith("QUERY "):
            return
        callsign = text[6:].strip().upper()
        record = self.records.get(callsign)
        if record is None:
            self.queries_missed += 1
            reply = f"NOTFOUND {callsign}"
        else:
            self.queries_answered += 1
            reply = f"FOUND {record.encode()}"
        self.socket.sendto(reply.encode("latin-1"), source, source_port)


class CallbookDirectory:
    """Which server is responsible for each call area."""

    def __init__(self) -> None:
        self._servers: Dict[int, IPv4Address] = {}

    def register(self, area: int, address: "IPv4Address | str") -> None:
        """Register a server address for a call area."""
        self._servers[area] = IPv4Address.coerce(address)

    def server_for(self, callsign: str) -> Optional[IPv4Address]:
        """The server responsible for a callsign's area; None if uncovered."""
        area = call_area(callsign)
        if area is None:
            return None
        return self._servers.get(area)


class CallbookClient:
    """Asynchronous lookup against the distributed servers."""

    RETRY_INTERVAL = 5 * SECOND
    MAX_TRIES = 3

    def __init__(self, stack: NetStack, directory: CallbookDirectory,
                 port: int = CALLBOOK_PORT) -> None:
        self.stack = stack
        self.directory = directory
        self.server_port = port
        self.socket = UdpSocket(stack)
        self.socket.on_datagram = self._reply
        self._pending: Dict[str, Callable[[Optional[CallbookRecord]], None]] = {}
        self._retries: Dict[str, Event] = {}
        self._tries: Dict[str, int] = {}
        self.results: Dict[str, Optional[CallbookRecord]] = {}

    def lookup(self, callsign: str,
               callback: Optional[Callable[[Optional[CallbookRecord]], None]] = None) -> bool:
        """Start a lookup; returns False when no server covers the area."""
        callsign = callsign.upper()
        server = self.directory.server_for(callsign)
        if server is None:
            self.results[callsign] = None
            if callback is not None:
                callback(None)
            return False
        self._pending[callsign] = callback or _ignore_record
        self._tries[callsign] = 0
        self._send_query(callsign, server)
        return True

    def _send_query(self, callsign: str, server: IPv4Address) -> None:
        self._tries[callsign] += 1
        self.socket.sendto(f"QUERY {callsign}".encode(), server, self.server_port)
        self._retries[callsign] = self.stack.sim.schedule(
            self.RETRY_INTERVAL, self._retry, callsign, server,
            label=f"callbook retry {callsign}",
        )

    def _retry(self, callsign: str, server: IPv4Address) -> None:
        if callsign not in self._pending:
            return
        if self._tries[callsign] >= self.MAX_TRIES:
            callback = self._pending.pop(callsign)
            self.results[callsign] = None
            callback(None)
            return
        self._send_query(callsign, server)

    def _reply(self, payload: bytes, _source: IPv4Address, _port: int) -> None:
        text = payload.decode("latin-1").strip()
        if text.startswith("FOUND "):
            record = CallbookRecord.decode(text[6:])
            callsign = record.callsign.upper()
            result: Optional[CallbookRecord] = record
        elif text.startswith("NOTFOUND "):
            callsign = text[9:].strip().upper()
            result = None
        else:
            return
        callback = self._pending.pop(callsign, None)
        timer = self._retries.pop(callsign, None)
        if timer is not None:
            timer.cancel()
        if callback is not None:
            self.results[callsign] = result
            callback(result)
