"""Electronic mail: SMTP (RFC 821 core) with per-host mailboxes.

The grammar is the working subset every 1988 mailer spoke: HELO,
MAIL FROM, RCPT TO, DATA (terminated by a lone dot), QUIT.  The BBS
uses :class:`SmtpClient` to forward packet mail into the Internet once
a gateway exists -- the workflow the paper's introduction describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.inet.netstack import NetStack
from repro.inet.sockets import TcpServerSocket, TcpSocket
from repro.inet.tcp import RtoPolicy

SMTP_PORT = 25


@dataclass
class MailMessage:
    """One delivered message."""

    sender: str
    recipients: List[str]
    body: str


class Mailbox:
    """Per-host mail spool, keyed by local part."""

    def __init__(self) -> None:
        self.messages: Dict[str, List[MailMessage]] = {}

    def deliver(self, message: MailMessage) -> None:
        """Deliver a message to its recipients."""
        for recipient in message.recipients:
            local = recipient.split("@")[0].strip().lower()
            self.messages.setdefault(local, []).append(message)

    def inbox(self, user: str) -> List[MailMessage]:
        """Messages stored for the given user."""
        return self.messages.get(user.lower(), [])


class _SmtpSession:
    def __init__(self, server: "SmtpServer", socket: TcpSocket) -> None:
        self.server = server
        self.socket = socket
        self.sender: Optional[str] = None
        self.recipients: List[str] = []
        self.in_data = False
        self.body_lines: List[str] = []
        socket.on_data = self._on_socket_data
        self._reply(220, f"{server.stack.hostname} SMTP ready")

    def _on_socket_data(self, _chunk: bytes) -> None:
        self._pump()

    def _reply(self, code: int, text: str) -> None:
        self.socket.send(f"{code} {text}\r\n".encode())

    def _pump(self) -> None:
        while True:
            line = self.socket.read_line()
            if line is None:
                return
            if self.in_data:
                self._data_line(line)
            else:
                self._command(line)

    def _command(self, line: str) -> None:
        upper = line.upper()
        if upper.startswith("HELO"):
            self._reply(250, f"hello {line[4:].strip() or 'you'}")
        elif upper.startswith("MAIL FROM:"):
            self.sender = line[10:].strip(" <>")
            self.recipients = []
            self._reply(250, "sender ok")
        elif upper.startswith("RCPT TO:"):
            if self.sender is None:
                self._reply(503, "need MAIL first")
                return
            self.recipients.append(line[8:].strip(" <>"))
            self._reply(250, "recipient ok")
        elif upper.startswith("DATA"):
            if not self.recipients:
                self._reply(503, "need RCPT first")
                return
            self.in_data = True
            self.body_lines = []
            self._reply(354, "end with .")
        elif upper.startswith("QUIT"):
            self._reply(221, "bye")
            self.socket.close()
        else:
            self._reply(500, "unrecognized")

    def _data_line(self, line: str) -> None:
        if line == ".":
            self.in_data = False
            message = MailMessage(
                sender=self.sender or "",
                recipients=list(self.recipients),
                body="\n".join(self.body_lines),
            )
            self.server.mailbox.deliver(message)
            self.server.delivered.append(message)
            self.sender = None
            self.recipients = []
            self._reply(250, "message accepted")
            return
        if line.startswith(".."):
            line = line[1:]  # dot-stuffing
        self.body_lines.append(line)


class SmtpServer:
    """smtpd with a per-host :class:`Mailbox`."""

    def __init__(self, stack: NetStack, mailbox: Optional[Mailbox] = None,
                 port: int = SMTP_PORT) -> None:
        self.stack = stack
        self.mailbox = mailbox if mailbox is not None else Mailbox()
        self.delivered: List[MailMessage] = []
        self.sessions: List[_SmtpSession] = []
        self.server = TcpServerSocket(stack, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        self.sessions.append(_SmtpSession(self, socket))


class SmtpClient:
    """Sends one message, then quits.  ``on_done(ok)`` reports the result."""

    def __init__(self, stack: NetStack, remote: str, sender: str,
                 recipients: List[str], body: str,
                 port: int = SMTP_PORT,
                 rto_policy: Optional[RtoPolicy] = None,
                 on_done: Optional[Callable[[bool], None]] = None) -> None:
        self.ok: Optional[bool] = None
        self.on_done = on_done
        self._sender = sender
        self._recipients = list(recipients)
        self._body: Optional[str] = body
        self._body_pending = body
        self._rcpt_index = 0
        self.socket = TcpSocket.connect(stack, remote, port, rto_policy=rto_policy)
        self.socket.on_data = self._on_socket_data
        self.socket.on_close = self._closed

    def _on_socket_data(self, _chunk: bytes) -> None:
        self._pump()

    def _pump(self) -> None:
        while True:
            line = self.socket.read_line()
            if line is None:
                return
            self._reply(line)

    def _reply(self, line: str) -> None:
        code = line[:3]
        if code == "220":
            self.socket.send_line("HELO client")
        elif code == "250":
            self._advance()
        elif code == "354":
            for body_line in self._body_pending.split("\n"):
                if body_line.startswith("."):
                    body_line = "." + body_line
                self.socket.send_line(body_line)
            self.socket.send_line(".")
        elif code == "221":
            pass
        else:
            self._finish(False)
            self.socket.close()

    def _advance(self) -> None:
        # 250 sequence: HELO ack -> MAIL -> RCPT* -> (DATA body accepted)
        if self._sender is not None:
            self.socket.send_line(f"MAIL FROM:<{self._sender}>")
            self._sender = None
        elif self._rcpt_index < len(self._recipients):
            self.socket.send_line(f"RCPT TO:<{self._recipients[self._rcpt_index]}>")
            self._rcpt_index += 1
        elif self._body is not None:
            self.socket.send_line("DATA")
            # next 250 (after 354 + body) means accepted
            self._body_sent = True
            self._body_pending = self._body
            self._body = None
        else:
            self._finish(True)
            self.socket.send_line("QUIT")
            self.socket.close()

    def _finish(self, ok: bool) -> None:
        if self.ok is None:
            self.ok = ok
            if self.on_done is not None:
                self.on_done(ok)

    def _closed(self, _reason: str) -> None:
        if self.ok is None:
            self._finish(False)
