"""Multi-fidelity simulation and sharded regional execution.

The reproduction's default byte-faithful path clocks every serial byte
and radio frame through the event loop; that is the right fidelity for
the paper's two-host testbeds but wasteful for a scenario with
thousands of background stations.  This package adds the machinery to
trade fidelity for scale without giving up determinism:

* :mod:`repro.scale.fidelity` -- the fidelity dial (``per_char``,
  ``frame``, ``flow``) and the metric-comparison helper that gates
  frame fidelity against the byte-faithful path.
* :mod:`repro.scale.flow` -- :class:`~repro.scale.flow.FlowStationCloud`,
  an analytic rate/queue model standing in for many background stations
  while still occupying the shared channel and feeding CounterSets.
* :mod:`repro.scale.regions` -- partition a topology into per-region
  simulations joined by gateway links.
* :mod:`repro.scale.shard` -- the conservative time-windowed shard
  runner: one region per worker process, lookahead equal to the
  inter-region link latency, deterministic merged digests for every
  worker count.
"""

from repro.scale.fidelity import (
    FIDELITY_LEVELS,
    FIDELITY_NEUTRAL_METRICS,
    fidelity_comparable,
)
from repro.scale.flow import FlowStationCloud
from repro.scale.regions import (
    Region,
    RegionGatewayLink,
    ScaleLayout,
    build_region,
    layout_from_scenario,
)
from repro.scale.shard import run_sharded

__all__ = [
    "FIDELITY_LEVELS",
    "FIDELITY_NEUTRAL_METRICS",
    "fidelity_comparable",
    "FlowStationCloud",
    "Region",
    "RegionGatewayLink",
    "ScaleLayout",
    "build_region",
    "layout_from_scenario",
    "run_sharded",
]
