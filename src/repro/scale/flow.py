"""Flow-level background stations: the analytic end of the fidelity dial.

A :class:`FlowStationCloud` stands in for a crowd of background
stations -- the emergency-net surge, the region-wide ragchew population
-- that a scenario needs for channel load but not for protocol detail.
Instead of one serial line, TNC, and CSMA state machine per station,
the cloud keeps an aggregate rate/queue model:

* each **epoch** it draws the crowd's Poisson frame arrivals from a
  named seeded stream (``flow/<name>``), adds them to a bounded
  backlog (overflow counts as drops, like any TNC queue), and
* keys the shared :class:`~repro.radio.channel.RadioChannel` with one
  **carrier-only burst** covering the served frames' combined airtime
  (:meth:`RadioChannel.occupy`).  Real stations sense the burst as
  carrier and any real frame overlapping it collides at shared
  receivers -- the load is physically present on the channel -- but
  nothing is ever delivered for it: the cloud accounts its own traffic
  in a :class:`~repro.metrics.counters.CounterSet`.

The cloud is polite (it defers a burst when it senses carrier at the
epoch tick) and duty-cycle capped, so a big population degrades the
channel the way a big population does, not the way a jammer does.
Everything is deterministic: arrivals come from the seeded stream, the
first tick is offset by a draw from the same stream (so multiple
clouds desynchronise reproducibly), and no wall clock is consulted.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.metrics.counters import CounterSet
from repro.radio.channel import RadioChannel
from repro.radio.modem import ModemProfile
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams

#: Default epoch: one aggregate scheduling decision per simulated second.
DEFAULT_EPOCH = 1 * SECOND

#: Default cap on the fraction of an epoch the cloud may occupy.
DEFAULT_DUTY_CAP = 0.35

#: Knuth's product method underflows for large means; draws above this
#: are decomposed into chunks (Poisson sums are Poisson).
_KNUTH_CHUNK = 30.0


class FlowStationCloud:
    """An aggregate of ``stations`` background stations on one channel.

    ``rate_per_minute`` is the per-station offered frame rate;
    ``frame_bytes`` sizes the airtime of each modelled frame via the
    modem profile.  ``duration`` (microseconds) bounds the offered load
    window like any traffic generator; the backlog keeps draining until
    it empties or the run ends.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: RadioChannel,
        streams: RandomStreams,
        name: str = "BG",
        stations: int = 100,
        rate_per_minute: float = 0.5,
        frame_bytes: int = 96,
        modem: Optional[ModemProfile] = None,
        epoch: int = DEFAULT_EPOCH,
        duty_cap: float = DEFAULT_DUTY_CAP,
        max_backlog: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> None:
        if stations < 1:
            raise ValueError("a flow cloud needs at least one station")
        if rate_per_minute < 0:
            raise ValueError("rate_per_minute must be non-negative")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0.0 < duty_cap <= 1.0:
            raise ValueError("duty_cap must be in (0, 1]")
        self.sim = sim
        self.channel = channel
        self.name = name
        self.stations = stations
        self.epoch = epoch
        self.duty_cap = duty_cap
        self.modem = modem if modem is not None else ModemProfile()
        self.frame_airtime = self.modem.frame_airtime(frame_bytes)
        #: Mean aggregate arrivals per epoch.
        self.mean_per_epoch = (
            stations * (rate_per_minute / 60.0) * (epoch / SECOND))
        #: Bounded queue, like any TNC's; default holds ~4 epochs of load.
        self.max_backlog = (
            max_backlog if max_backlog is not None
            else max(16, int(self.mean_per_epoch * 4)))
        self.duration = duration
        self.rng = streams.stream(f"flow/{name}")
        self.port = channel.attach(f"FLOW/{name}", self._overheard)
        self.backlog = 0
        self.counters = CounterSet((
            "flow_epochs", "flow_offered", "flow_served", "flow_dropped",
            "flow_deferred", "flow_airtime_us", "flow_overheard",
        ))
        self._deadline: Optional[int] = None
        self._started = False
        #: Token bucket of permitted airtime: each epoch deposits
        #: ``duty_cap * epoch`` microseconds, capped so quiet stretches
        #: cannot bank an unbounded burst.  The cap is at least one
        #: frame so low duty ceilings still serve, just rarely.
        self._credit = 0
        self._credit_cap = max(self.frame_airtime,
                               int(4 * duty_cap * epoch))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, at: int = 0) -> None:
        """Begin offering load ``at`` microseconds from now.  Idempotent.

        The first epoch tick is offset by a draw from the cloud's own
        stream so that several clouds on one channel (or one per region)
        do not tick in lockstep.
        """
        if self._started:
            return
        self._started = True
        if self.duration is not None:
            self._deadline = self.sim.now + at + self.duration
        offset = at + int(self.rng.random() * self.epoch)
        self.sim.schedule(offset, self._tick, label=f"flow {self.name}")

    def _tick(self) -> None:
        self.counters.bump("flow_epochs")
        if self._deadline is None or self.sim.now < self._deadline:
            arrivals = self._poisson(self.mean_per_epoch)
            if arrivals:
                self.counters.bump("flow_offered", arrivals)
                self.backlog += arrivals
                if self.backlog > self.max_backlog:
                    overflow = self.backlog - self.max_backlog
                    self.counters.bump("flow_dropped", overflow)
                    self.backlog = self.max_backlog
        self._serve()
        # Keep ticking while load is still being offered or drained.
        if (self._deadline is None or self.sim.now < self._deadline
                or self.backlog > 0):
            self.sim.schedule(self.epoch, self._tick,
                              label=f"flow {self.name}")

    def _serve(self) -> None:
        self._credit = min(self._credit + int(self.duty_cap * self.epoch),
                           self._credit_cap)
        serve = min(self.backlog, self._credit // self.frame_airtime)
        if serve <= 0:
            return
        if self.port.carrier_sensed():
            # Politeness: someone is on the air at our decision instant;
            # hold the whole burst for the next epoch.
            self.counters.bump("flow_deferred", serve)
            return
        airtime = serve * self.frame_airtime
        self.channel.occupy(self.port, airtime)
        self._credit -= airtime
        self.backlog -= serve
        self.counters.bump("flow_served", serve)
        self.counters.bump("flow_airtime_us", airtime)

    # ------------------------------------------------------------------
    # the rest of the channel
    # ------------------------------------------------------------------

    def _overheard(self, payload: bytes) -> None:
        # The cloud hears real frames like any attached station; it only
        # counts them (its members have no protocol state to feed).
        self.counters.bump("flow_overheard")

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------

    def _poisson(self, mean: float) -> int:
        """Deterministic Poisson draw from the cloud's stream."""
        total = 0
        while mean > _KNUTH_CHUNK:
            total += self._poisson_knuth(_KNUTH_CHUNK)
            mean -= _KNUTH_CHUNK
        return total + self._poisson_knuth(mean)

    def _poisson_knuth(self, mean: float) -> int:
        if mean <= 0.0:
            return 0
        limit = math.exp(-mean)
        product = self.rng.random()
        count = 0
        while product > limit:
            count += 1
            product *= self.rng.random()
        return count

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Flat name->value summary (merged by the scenario layer)."""
        out = {str(k): float(v) for k, v in self.counters.snapshot().items()}
        out["flow_backlog"] = float(self.backlog)
        out["flow_stations"] = float(self.stations)
        return out
