"""Conservative time-windowed sharded execution.

Each :class:`~repro.scale.regions.Region` is an independent simulator;
the only coupling between regions is the inter-region gateway link,
whose one-way latency ``W`` (``ScaleLayout.link_latency``) is the
**lookahead** of a classic conservative parallel-simulation protocol:

* time advances in windows of width ``W``;
* a packet handed to the link during window ``k`` (send time in
  ``(kW, (k+1)W]``) arrives at ``send + W``, which is strictly inside
  window ``k+1`` or later -- so running every region to the next
  barrier *before* exchanging messages can never violate causality;
* at each barrier the runner drains every region's link outbox, sorts
  the messages by the layout-independent key ``(send_time, src_region,
  seq)``, and injects each into its destination region's twin
  interface at ``send + W``.

Because regions are seeded independently of the process layout
(:func:`~repro.scale.regions.derive_region_seed`) and the message
exchange is a deterministic function of the drained sets, the merged
metrics are a pure function of (layout, seed): running with 1, 2 or 4
worker processes yields byte-identical digests, which the scale gate
(``python -m repro scale``) asserts.

The multi-process path forks one worker per shard; workers hold their
regions for the whole run and speak a tiny message protocol over a
pipe (``("window", barrier, inbound)`` -> outbound list,
``("finish",)`` -> per-region metrics).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.merge import MergedFlightView, merge_pcaps
from repro.obs.spans import SpanContext
from repro.scale.regions import (
    Region,
    ScaleLayout,
    build_region,
    region_dump,
)
from repro.sim.clock import seconds

#: (send_time, seq, next_hop, packet, span_context) as drained from a
#: link outbox; the context is None unless the layout is observed.
OutboxEntry = Tuple[int, int, str, bytes, Optional[SpanContext]]

#: (arrival_time, packet, span_context) ready to inject into a
#: destination region.
InboundEntry = Tuple[int, bytes, Optional[SpanContext]]

#: Metrics whose sum across regions is meaningless; they stay
#: per-region and (for RTT) are averaged into the totals instead.
_NON_SUMMABLE = frozenset({"ping_mean_rtt_s", "channel_utilisation"})


def window_count(layout: ScaleLayout) -> int:
    """Number of barriers needed to cover load plus drain time."""
    horizon = seconds(layout.duration_seconds + layout.drain_seconds)
    return max(1, -(-horizon // layout.link_latency))


def _route(
    layout: ScaleLayout,
    outbound: Sequence[Tuple[int, OutboxEntry]],
) -> Dict[int, List[InboundEntry]]:
    """Turn drained (src_region, entry) pairs into per-region inboxes.

    The global sort key (send_time, src_region, seq) depends only on
    simulation state, never on which worker drained the entry first --
    this is the line that makes shard counts interchangeable.
    """
    table = layout.ip_to_region()
    keyed = []
    for src, (send_time, seq, next_hop, packet, context) in outbound:
        dest = table.get(next_hop)
        if dest is None or dest == src:
            # Unroutable next hops die on the link, like any wire.
            continue
        keyed.append((send_time, src, seq, dest, packet, context))
    keyed.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    inbound: Dict[int, List[InboundEntry]] = {}
    for send_time, _src, _seq, dest, packet, context in keyed:
        inbound.setdefault(dest, []).append(
            (send_time + layout.link_latency, packet, context))
    return inbound


def _inject(region: Region, entries: Sequence[InboundEntry]) -> None:
    """Schedule a window's inbound packets; all arrivals are >= now."""
    for arrival, packet, context in entries:
        region.sim.at(arrival, region.link.inject, packet, context,
                      label=f"irl0 arrival region{region.index}")


def _step_window(
    region: Region,
    barrier: int,
    entries: Sequence[InboundEntry],
) -> List[Tuple[int, OutboxEntry]]:
    """Advance one region to ``barrier`` and drain what it sent."""
    _inject(region, entries)
    region.sim.run(until=barrier)
    return [(region.index, entry) for entry in region.link.drain_outbox()]


def merge_metrics(
    layout: ScaleLayout,
    per_region: Dict[int, Dict[str, float]],
) -> Dict[str, float]:
    """Merge per-region metrics into one flat, digestable dict.

    Every region keeps its own namespaced copy (``region0/...``) and
    summable metrics also appear as ``total/...`` sums; RTT means are
    averaged over the regions that measured one.
    """
    merged: Dict[str, float] = {}
    totals: Dict[str, float] = {}
    rtts: List[float] = []
    for index in sorted(per_region):
        for key in sorted(per_region[index]):
            value = float(per_region[index][key])
            merged[f"region{index}/{key}"] = value
            if key == "ping_mean_rtt_s":
                rtts.append(value)
            if key not in _NON_SUMMABLE:
                totals[key] = totals.get(key, 0.0) + value
    for key in sorted(totals):
        merged[f"total/{key}"] = totals[key]
    if rtts:
        merged["total/ping_mean_rtt_s"] = sum(rtts) / len(rtts)
    merged["total/regions"] = float(layout.regions)
    if "total/obs_born_total" in merged:
        # The merged conservation invariant.  Per-region books balance
        # by construction (born + adopted == delivered + dropped + shed
        # + handed_off + in_flight); what can actually break across
        # shards is a contradictory terminal or a handoff that no
        # region adopted -- so that is what the gate metric checks, and
        # the run-wide "born == delivered + dropped + shed + in_flight"
        # identity follows.
        ok = (merged.get("total/obs_conservation_violations", 0.0) == 0.0
              and merged.get("total/obs_handed_off", 0.0)
              == merged.get("total/obs_adopted", 0.0))
        merged["total/obs_sharded_conservation_ok"] = 1.0 if ok else 0.0
    return merged


# ----------------------------------------------------------------------
# inline execution (procs=1, also the in-worker step loop)
# ----------------------------------------------------------------------


def _run_inline(layout: ScaleLayout) -> Dict[int, Dict[str, object]]:
    regions = [build_region(layout, index)
               for index in range(layout.regions)]
    inbound: Dict[int, List[InboundEntry]] = {}
    for window in range(window_count(layout)):
        barrier = (window + 1) * layout.link_latency
        outbound: List[Tuple[int, OutboxEntry]] = []
        for region in regions:
            outbound.extend(
                _step_window(region, barrier,
                             inbound.get(region.index, ())))
        inbound = _route(layout, outbound)
    return {region.index: region_dump(region) for region in regions}


# ----------------------------------------------------------------------
# multi-process execution
# ----------------------------------------------------------------------


def _worker_main(layout: ScaleLayout, owned: Tuple[int, ...], conn) -> None:
    """One shard worker: builds its regions, then follows barriers."""
    regions = {index: build_region(layout, index) for index in owned}
    while True:
        message = conn.recv()
        if message[0] == "window":
            _, barrier, inbound = message
            outbound: List[Tuple[int, OutboxEntry]] = []
            for index in owned:
                outbound.extend(
                    _step_window(regions[index], barrier,
                                 inbound.get(index, ())))
            conn.send(outbound)
        elif message[0] == "finish":
            conn.send({index: region_dump(regions[index])
                       for index in owned})
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown shard message {message[0]!r}")


def _run_processes(layout: ScaleLayout,
                   procs: int) -> Dict[int, Dict[str, object]]:
    workers = min(procs, layout.regions)
    ownership = [
        tuple(index for index in range(layout.regions)
              if index % workers == worker)
        for worker in range(workers)
    ]
    links = []
    for owned in ownership:
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main, args=(layout, owned, child_conn),
            name=f"shard-{owned[0]}")
        process.start()
        child_conn.close()
        links.append((owned, parent_conn, process))
    try:
        inbound: Dict[int, List[InboundEntry]] = {}
        for window in range(window_count(layout)):
            barrier = (window + 1) * layout.link_latency
            for owned, conn, _process in links:
                conn.send(("window", barrier,
                           {index: inbound[index] for index in owned
                            if index in inbound}))
            outbound: List[Tuple[int, OutboxEntry]] = []
            for _owned, conn, _process in links:
                outbound.extend(conn.recv())
            inbound = _route(layout, outbound)
        per_region: Dict[int, Dict[str, object]] = {}
        for _owned, conn, _process in links:
            conn.send(("finish",))
            per_region.update(conn.recv())
    finally:
        for _owned, conn, process in links:
            conn.close()
            process.join(timeout=60)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join()
    return per_region


@dataclass
class ShardedRun:
    """Merged artifacts of one sharded run.

    ``metrics`` is always populated; ``view`` (the cross-region span
    view) exists when the layout observed, ``pcap`` (one time-ordered
    merged capture) when it captured.
    """

    metrics: Dict[str, float]
    view: Optional[MergedFlightView] = None
    pcap: Optional[bytes] = None


def run_sharded_full(layout: ScaleLayout, procs: int = 1) -> ShardedRun:
    """Run a partitioned layout and return every merged artifact.

    ``procs`` caps the worker-process count (clamped to the region
    count); ``procs=1`` runs every region inline in this process.  The
    merged result is identical for every ``procs`` value -- that is the
    contract the scale gate digests -- and the same holds for the
    merged trace view and capture, because workers ship picklable
    per-region dumps and the merge is a sorted pure function of them.
    """
    if procs < 1:
        raise ValueError("procs must be at least 1")
    if procs == 1 or layout.regions == 1:
        dumps = _run_inline(layout)
    else:
        dumps = _run_processes(layout, procs)
    metrics = merge_metrics(
        layout, {index: dump["metrics"]  # type: ignore[misc]
                 for index, dump in dumps.items()})
    view: Optional[MergedFlightView] = None
    if layout.observe:
        view = MergedFlightView(
            {index: dump["spans"]  # type: ignore[misc]
             for index, dump in dumps.items()})
    pcap: Optional[bytes] = None
    if layout.capture:
        pcap = merge_pcaps([dumps[index]["pcap"]  # type: ignore[misc]
                            for index in sorted(dumps)])
    return ShardedRun(metrics=metrics, view=view, pcap=pcap)


def run_sharded(layout: ScaleLayout, procs: int = 1) -> Dict[str, float]:
    """Run a partitioned layout and return merged metrics only."""
    return run_sharded_full(layout, procs).metrics
