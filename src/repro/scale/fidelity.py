"""The fidelity dial.

Three levels, selectable per serial line / station:

* ``per_char`` -- the byte-faithful default: every serial byte is one
  event, exactly as the DZ interrupt handler of the paper sees it.
* ``frame`` -- one event per host serial write (one KISS record in the
  common case), delivered at the instant the *last* byte would have
  arrived.  Because a KISS record is terminated by its trailing FEND,
  frame completion times -- and therefore every protocol outcome --
  are identical to the per-char path on a clean line.  While a serial
  fault is installed on the receiving endpoint the line automatically
  downshifts to per-char delivery so per-byte fault filters still see
  every byte (see :mod:`repro.serialio.line`).
* ``flow`` -- no serial line at all: an analytic rate/queue model
  (:class:`repro.scale.flow.FlowStationCloud`) stands in for a crowd of
  background stations, occupying the shared radio channel with
  carrier-only bursts and accounting its own traffic in a CounterSet.

The frame level is gated, not trusted: tests compare metric digests of
the same seeded scenario at ``per_char`` and ``frame`` fidelity through
:func:`fidelity_comparable`, which strips only the event-queue
bookkeeping that legitimately differs (fewer events is the whole
point).
"""

from __future__ import annotations

from typing import Dict

#: The selectable fidelity levels, cheapest last.
FIDELITY_LEVELS = ("per_char", "frame", "flow")

#: Serial-line fidelity levels (what :class:`~repro.serialio.line.SerialLine`
#: accepts); ``flow`` replaces the line entirely rather than tuning it.
LINE_FIDELITY_LEVELS = ("per_char", "frame")

#: Metrics that may legitimately differ between a per-char run and a
#: frame-fidelity run of the same scenario: bookkeeping about the event
#: queue itself, never protocol outcomes.  Compare with
#: :data:`repro.sim.sanitizer.ORDER_NEUTRAL_METRICS`, its ordering twin.
FIDELITY_NEUTRAL_METRICS = frozenset({
    "events_executed",
})


def fidelity_comparable(metrics: Dict[str, float]) -> Dict[str, float]:
    """The subset of a metrics dict that must survive a fidelity switch.

    Sharded runs prefix per-region metrics (``region0/events_executed``,
    ``total/events_executed``); the neutral set applies to the last path
    segment so the same gate works on flat and sharded metric dicts.
    """
    return {key: value for key, value in sorted(metrics.items())
            if key.rsplit("/", 1)[-1] not in FIDELITY_NEUTRAL_METRICS}


def validate_line_fidelity(fidelity: str) -> str:
    """Check a serial-line fidelity name; returns it for chaining."""
    if fidelity not in LINE_FIDELITY_LEVELS:
        raise ValueError(
            f"unknown line fidelity {fidelity!r}; "
            f"expected one of {LINE_FIDELITY_LEVELS}")
    return fidelity
