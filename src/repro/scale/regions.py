"""Regional partitioning of a radio internetwork.

The paper's network is one frequency; a metro-scale reproduction is
many frequencies, one per *region*, joined by gateways with a wireline
(or point-to-point radio) link between them -- exactly the §4.2
structure where each regional gateway must hold **host routes** for the
other coasts, because all of AMPRnet is one class-A network and the
classful table cannot say "44.24 goes west, 44.25 goes east".

A :class:`ScaleLayout` describes the whole partitioned world as pure
data; :func:`build_region` materialises *one* region -- its own
:class:`~repro.sim.engine.Simulator`, seeded streams, channel, a
forwarding gateway, foreground stations at the configured fidelity, an
optional :class:`~repro.scale.flow.FlowStationCloud` of background
stations, and a :class:`RegionGatewayLink` carrying inter-region
packets.  Each region's seed is derived from the layout seed and the
region index alone, so a region is byte-identical no matter which
worker process builds it (the shard-invariance property the runner
gates on).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.hosts import PcHost, make_radio_host
from repro.core.topology import synthesize_stations
from repro.faults import FaultInjector, FaultPlan
from repro.netif.ifnet import InterfaceFlags, NetworkInterface
from repro.obs.pcap import PcapWriter
from repro.obs.spans import FlightRecorder, SpanContext
from repro.radio.channel import RadioChannel
from repro.radio.modem import ModemProfile
from repro.scale.fidelity import validate_line_fidelity
from repro.scale.flow import FlowStationCloud
from repro.sim.clock import MS, seconds
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer
from repro.tools.axdump import ChannelMonitor
from repro.workload.arrivals import make_arrivals
from repro.workload.generators import PingGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workload.scenario import Scenario

#: Second octet of region 0's subnet (the paper's 44.24 Seattle space);
#: region ``r`` lives in ``44.(24 + r)``.
REGION_SUBNET_BASE = 24

#: Default one-way latency of the inter-region gateway link, which is
#: also the conservative synchronisation lookahead of the shard runner.
DEFAULT_LINK_LATENCY = 250 * MS

#: Ident base for foreground pingers: layout-stable so digests do not
#: depend on how many Pinger objects a worker process created before.
_PING_IDENT_BASE = 0x5000


@dataclass(frozen=True)
class ScaleLayout:
    """A partitioned, mixed-fidelity world as pure data.

    Every derived quantity (region seeds, addresses, callsigns) is a
    pure function of this value, which is what makes the sharded run a
    pure function of (layout, seed) regardless of worker count.
    """

    regions: int = 2
    stations_per_region: int = 2
    flow_stations: int = 0
    flow_rate_per_minute: float = 0.5
    flow_frame_bytes: int = 96
    fidelity: str = "frame"
    duration_seconds: float = 60.0
    #: Extra windows after the load stops, so in-flight replies land.
    drain_seconds: float = 30.0
    seed: int = 0
    bit_rate: int = 1200
    serial_baud: int = 9600
    link_latency: int = DEFAULT_LINK_LATENCY
    ping_rate_per_minute: float = 4.0
    ping_payload_bytes: int = 56
    #: Applied to region 0 only (the shard protocol keeps the other
    #: regions' RNG streams untouched either way).
    fault_plan: Optional[FaultPlan] = None
    #: Attach a per-region FlightRecorder (trace ids salted by region,
    #: spans handed off across the inter-region link).  Part of the
    #: layout on purpose: observing is a property of the *world*, so
    #: every worker count builds the identical instrumented world.
    observe: bool = False
    #: Attach a per-region ChannelMonitor writing a pcap capture.
    capture: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.regions <= 200:
            raise ValueError("regions must be in 1..200")
        if self.stations_per_region < 1:
            raise ValueError("each region needs at least one station")
        if self.flow_stations < 0:
            raise ValueError("flow_stations must be non-negative")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.link_latency <= 0:
            raise ValueError("link latency must be positive")
        validate_line_fidelity(self.fidelity)

    # -- derived addressing (pure functions of the layout) --------------

    def gateway_ip(self, region: int) -> str:
        """The regional gateway's radio-side address."""
        return f"44.{REGION_SUBNET_BASE + region}.0.28"

    def link_ip(self, region: int) -> str:
        """The regional gateway's inter-region link address."""
        return f"10.42.{region}.1"

    def station_ip(self, region: int, index: int) -> str:
        """Foreground station addresses (matches synthesize_stations)."""
        return (f"44.{REGION_SUBNET_BASE + region}"
                f".{1 + index // 200}.{1 + index % 200}")

    def station_ips(self, region: int) -> List[str]:
        """All foreground station addresses of one region."""
        return [self.station_ip(region, index)
                for index in range(self.stations_per_region)]

    def flow_share(self, region: int) -> int:
        """How many flow-level stations this region models."""
        base = self.flow_stations // self.regions
        extra = 1 if region < self.flow_stations % self.regions else 0
        return base + extra

    def ip_to_region(self) -> Dict[str, int]:
        """Destination address -> owning region, for message routing."""
        table: Dict[str, int] = {}
        for region in range(self.regions):
            table[self.gateway_ip(region)] = region
            table[self.link_ip(region)] = region
            for address in self.station_ips(region):
                table[address] = region
        return table


def derive_region_seed(seed: int, region: int) -> int:
    """The seed of one region's RandomStreams: pure, layout-independent."""
    digest = hashlib.sha256(f"{seed}/region/{region}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Region index occupies the bits above this shift in a trace id, so
#: pkt_ids are globally unique across shards (region 0 allocates the
#: same ids a single-simulator run would).
TRACE_REGION_SHIFT = 40


def region_trace_base(region: int) -> int:
    """The trace-id salt of one region's FlightRecorder."""
    return region << TRACE_REGION_SHIFT


class RegionGatewayLink(NetworkInterface):
    """The inter-region point-to-point link, shard-runner flavoured.

    ``if_output`` does not model transmission locally: it stamps the
    packet with (send time, sequence) and parks it in an outbox the
    shard runner drains at every window barrier.  The runner applies the
    link latency when it injects the packet into the destination
    region's twin interface -- that latency *is* the conservative
    lookahead, which is why a window never needs to see a message from
    its own window.

    When the region is observed (``layout.observe``), each departing
    packet's span is handed off: the local :class:`FlightRecorder`
    closes it in the ``handed_off`` state and the compact span context
    rides the outbox entry; :meth:`inject` re-binds it in the
    destination region, so the merged trace reads straight across the
    shard boundary.
    """

    def __init__(self, sim: Simulator, region: int, name: str = "irl0",
                 mtu: int = 1500,
                 recorder: Optional[FlightRecorder] = None) -> None:
        super().__init__(
            sim, name, mtu,
            flags=(InterfaceFlags.UP | InterfaceFlags.POINTOPOINT
                   | InterfaceFlags.NOARP),
        )
        self.region = region
        self.recorder = recorder
        self._outbox: List[tuple] = []
        self._seq = 0

    def if_output(self, packet: bytes, next_hop, protocol: str = "ip") -> bool:
        if not self.is_up:
            self.oerrors += 1
            return False
        self._seq += 1
        context: Optional[SpanContext] = None
        if self.recorder is not None:
            context = self.recorder.handoff(packet, "gateway.tx", self.name)
        self._outbox.append(
            (self.sim.now, self._seq, str(next_hop), bytes(packet), context))
        self.count_output(packet)
        return True

    def inject(self, packet: bytes,
               context: Optional[SpanContext] = None) -> None:
        """Deliver one packet arriving from another region."""
        if context is not None and self.recorder is not None:
            self.recorder.adopt(context, "gateway.rx", self.name)
        self.deliver_input(bytes(packet), "ip")

    def drain_outbox(self) -> List[tuple]:
        """Take every parked (send_time, seq, next_hop, packet, context)
        entries."""
        outbox = self._outbox
        self._outbox = []
        return outbox


@dataclass
class Region:
    """One materialised region: a self-contained simulation."""

    index: int
    layout: ScaleLayout
    sim: Simulator
    streams: RandomStreams
    channel: RadioChannel
    gateway: PcHost
    link: RegionGatewayLink
    stations: List[PcHost]
    generators: List[PingGenerator]
    flow: Optional[FlowStationCloud] = None
    injector: Optional[FaultInjector] = None
    extra_routes: int = field(default=0)
    tracer: Optional[Tracer] = None
    recorder: Optional[FlightRecorder] = None
    monitor: Optional[ChannelMonitor] = None


def build_region(layout: ScaleLayout, index: int) -> Region:
    """Materialise region ``index`` of ``layout`` and start its load.

    The result is byte-identical regardless of which process calls this:
    all randomness comes from the region's derived seed, and the
    foreground pingers' ICMP idents are fixed from (region, station)
    rather than from a process-wide allocation counter.
    """
    if not 0 <= index < layout.regions:
        raise ValueError(f"region {index} outside layout of {layout.regions}")
    sim = Simulator()
    streams = RandomStreams(seed=derive_region_seed(layout.seed, index))
    tracer: Optional[Tracer] = None
    recorder: Optional[FlightRecorder] = None
    if layout.observe:
        tracer = Tracer(sim)
        recorder = FlightRecorder(tracer,
                                  trace_base=region_trace_base(index))
    channel = RadioChannel(sim, streams, tracer=tracer,
                           name=f"region{index}-145.01")
    monitor: Optional[ChannelMonitor] = None
    if layout.capture:
        monitor = ChannelMonitor(channel, name=f"MON{index}",
                                 pcap=PcapWriter())
    modem = ModemProfile(bit_rate=layout.bit_rate)

    gateway = make_radio_host(
        sim, channel, f"rgw{index}", f"GW{index}", layout.gateway_ip(index),
        tracer=tracer, modem=modem, serial_baud=layout.serial_baud,
        fidelity=layout.fidelity,
    )
    gateway.stack.ip_forwarding = True
    link = RegionGatewayLink(sim, index, recorder=recorder)
    gateway.stack.attach_interface(link, layout.link_ip(index),
                                   network_route=False)
    # §4.2 in code: net 44 is directly attached here, so every remote
    # region needs explicit HOST routes through the inter-region link.
    extra_routes = 0
    for other in range(layout.regions):
        if other == index:
            continue
        gateway.stack.routes.add_host_route(layout.gateway_ip(other), link)
        extra_routes += 1
        for address in layout.station_ips(other):
            gateway.stack.routes.add_host_route(address, link)
            extra_routes += 1

    stations = synthesize_stations(
        sim, channel, layout.stations_per_region,
        tracer=tracer, modem=modem, serial_baud=layout.serial_baud,
        default_gateway=layout.gateway_ip(index),
        subnet=f"44.{REGION_SUBNET_BASE + index}",
        fidelity=layout.fidelity,
    )
    # The stations suffer the same classful blindness: net 44 looks
    # directly attached, so without host routes a remote gateway's
    # address would be ARPed for on the local channel and never answer.
    for host in stations:
        for other in range(layout.regions):
            if other != index:
                host.stack.routes.add_host_route(
                    layout.gateway_ip(other), host.interface,
                    gateway=layout.gateway_ip(index))
                extra_routes += 1

    duration = seconds(layout.duration_seconds)
    target = layout.gateway_ip((index + 1) % layout.regions)
    generators: List[PingGenerator] = []
    for position, host in enumerate(stations):
        arrivals = make_arrivals(
            "poisson", streams.stream(f"scale/ping/{position}"),
            layout.ping_rate_per_minute)
        generator = PingGenerator(
            sim, host.stack, target, arrivals,
            payload_size=layout.ping_payload_bytes, duration=duration,
        )
        # Layout-stable ident: the class-level allocator depends on how
        # many Pingers this *process* made before, which would differ
        # between worker layouts and leak into on-air bytes.
        generator.pinger.ident = (
            _PING_IDENT_BASE + index * 256 + position)
        generators.append(generator)

    flow: Optional[FlowStationCloud] = None
    share = layout.flow_share(index)
    if share > 0:
        flow = FlowStationCloud(
            sim, channel, streams, name=f"R{index}",
            stations=share, rate_per_minute=layout.flow_rate_per_minute,
            frame_bytes=layout.flow_frame_bytes, modem=modem,
            duration=duration,
        )

    injector: Optional[FaultInjector] = None
    if index == 0 and layout.fault_plan is not None:
        attachments: Dict[str, object] = {"gateway": gateway.radio}
        interfaces: Dict[str, NetworkInterface] = {
            "gateway": gateway.interface}
        for host in stations:
            attachments[str(host.callsign)] = host.radio
            interfaces[str(host.callsign)] = host.interface
        injector = FaultInjector(sim, streams)
        injector.install(layout.fault_plan, channel=channel,
                         attachments=attachments, interfaces=interfaces)

    for generator in generators:
        generator.start()
    if flow is not None:
        flow.start()
    return Region(
        index=index, layout=layout, sim=sim, streams=streams,
        channel=channel, gateway=gateway, link=link, stations=stations,
        generators=generators, flow=flow, injector=injector,
        extra_routes=extra_routes, tracer=tracer, recorder=recorder,
        monitor=monitor,
    )


def region_metrics(region: Region) -> Dict[str, float]:
    """One region's flat end-of-run metrics (all picklable floats)."""
    out: Dict[str, float] = {}
    rtts: List[float] = []
    for generator in region.generators:
        for key, value in generator.metrics().items():
            if key == "ping_mean_rtt_s":
                rtts.append(value)  # means do not sum
            else:
                out[key] = out.get(key, 0.0) + value
    if rtts:
        out["ping_mean_rtt_s"] = sum(rtts) / len(rtts)
    if region.flow is not None:
        out.update(region.flow.metrics())
    channel = region.channel
    out["channel_transmissions"] = float(channel.total_transmissions)
    out["channel_collisions"] = float(channel.total_collisions)
    out["channel_utilisation"] = float(channel.utilisation())
    out["gateway_ip_forwarded"] = float(
        region.gateway.stack.counters["ip_forwarded"])
    out["link_packets_out"] = float(region.link.opackets)
    out["link_packets_in"] = float(region.link.ipackets)
    if region.injector is not None:
        out["faults_injected"] = float(region.injector.faults_injected)
        out["faults_cleared"] = float(region.injector.faults_cleared)
        out["channel_frames_faded"] = float(channel.frames_faded)
    if region.recorder is not None:
        for key, value in region.recorder.finalize_metrics().items():
            out[f"obs_{key}"] = float(value)
    if region.monitor is not None:
        out["monitor_frames_heard"] = float(region.monitor.frames_heard)
    out["events_executed"] = float(region.sim.events_executed)
    return out


def region_dump(region: Region) -> Dict[str, object]:
    """One region's full picklable end-of-run dump.

    ``metrics`` is always present; ``spans`` (the recorder's compact
    span export, for cross-region trace merging) and ``pcap`` (the
    monitor's capture bytes) appear when the layout enabled them.
    Metrics come first so the recorder is finalized before export.
    """
    dump: Dict[str, object] = {"metrics": region_metrics(region)}
    if region.recorder is not None:
        dump["spans"] = region.recorder.export_spans()
    if region.monitor is not None and region.monitor.pcap is not None:
        dump["pcap"] = region.monitor.pcap.getvalue()
    return dump


def layout_from_scenario(scenario: "Scenario") -> ScaleLayout:
    """Map a regional :class:`~repro.workload.scenario.Scenario` onto a layout.

    Only ping mixes translate -- the cross-region data path carries IP,
    and the regional world has no shared BBS or discard host -- so any
    other generator kind is rejected loudly rather than silently skewed.
    """
    kinds = sorted({component.kind for component in scenario.mix})
    if kinds != ["ping"]:
        raise ValueError(
            f"regional scenarios support ping-only mixes, got {kinds}")
    return ScaleLayout(
        regions=scenario.regions,
        stations_per_region=max(1, scenario.stations // scenario.regions),
        flow_stations=scenario.flow_stations,
        flow_rate_per_minute=scenario.flow_rate_per_minute,
        fidelity=scenario.fidelity,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
        bit_rate=scenario.bit_rate,
        serial_baud=scenario.serial_baud,
        ping_rate_per_minute=scenario.mix[0].rate_per_minute,
        ping_payload_bytes=scenario.mix[0].payload_bytes,
        fault_plan=scenario.fault_plan,
        observe=scenario.observe,
    )
