"""Command-line front door: ``python -m repro <scenario>``.

Runs the bundled example scenarios without needing the examples/
directory, so an installed copy of the library can demonstrate itself:

    python -m repro quickstart     # Figure 1 ping
    python -m repro gateway        # §2.3 telnet session over the gateway
    python -m repro observatory    # axdump + netstat on a live gateway
    python -m repro list           # show this list

The fuller scenarios (BBS, emergency net, NET/ROM node network, ...)
live as scripts in the repository's examples/ directory.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict


def _quickstart() -> None:
    from repro.apps.ping import Pinger
    from repro.core.topology import build_figure1_testbed
    from repro.sim.clock import SECOND

    testbed = build_figure1_testbed(seed=7)
    pinger = Pinger(testbed.host.stack)
    pinger.send("44.24.0.5", count=3, interval=20 * SECOND)
    testbed.sim.run(until=120 * SECOND)
    print(f"ping 44.24.0.5: {pinger.received}/{pinger.sent} replies, "
          f"mean RTT {pinger.mean_rtt_seconds():.2f}s at 1200 bps")
    for record in testbed.tracer.select(category="radio.tx"):
        print(" ", record.render())


def _gateway() -> None:
    from repro.apps.telnet import TelnetClient, TelnetServer
    from repro.core.topology import build_gateway_testbed
    from repro.sim.clock import SECOND

    testbed = build_gateway_testbed(seed=42)
    TelnetServer(testbed.ether_host)
    client = TelnetClient(testbed.pc.stack, testbed.ETHER_HOST_IP)
    client.type_lines(["cliff", "echo hello from packet radio", "logout"])
    testbed.sim.run(until=900 * SECOND)
    print(client.transcript_text())
    print(f"[gateway forwarded "
          f"{testbed.gateway.stack.counters['ip_forwarded']} datagrams]")


def _observatory() -> None:
    from repro.apps.ping import Pinger
    from repro.core.topology import build_gateway_testbed
    from repro.sim.clock import SECOND
    from repro.tools.axdump import ChannelMonitor
    from repro.tools.netstat import format_netstat

    testbed = build_gateway_testbed(seed=88)
    monitor = ChannelMonitor(testbed.channel)
    pinger = Pinger(testbed.pc.stack)
    pinger.send(testbed.ETHER_HOST_IP, count=2, interval=30 * SECOND)
    testbed.sim.run(until=180 * SECOND)
    print(monitor.render())
    print()
    print(format_netstat(testbed.gateway.stack))


SCENARIOS: Dict[str, Callable[[], None]] = {
    "quickstart": _quickstart,
    "gateway": _gateway,
    "observatory": _observatory,
}


def main(argv: list) -> int:
    """Dispatch to a scenario; returns a process exit code."""
    name = argv[1] if len(argv) > 1 else "list"
    if name in SCENARIOS:
        SCENARIOS[name]()
        return 0
    if name not in ("list", "-h", "--help"):
        print(f"unknown scenario {name!r}", file=sys.stderr)
    print(__doc__.strip())
    print("\nbuilt-in scenarios:", ", ".join(sorted(SCENARIOS)))
    print("richer versions live in examples/*.py")
    return 0 if name in ("list", "-h", "--help") else 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
