"""Command-line front door: ``python -m repro <scenario>``.

Runs the bundled example scenarios without needing the examples/
directory, so an installed copy of the library can demonstrate itself:

    python -m repro quickstart     # Figure 1 ping
    python -m repro gateway        # §2.3 telnet session over the gateway
    python -m repro observatory    # axdump + netstat on a live gateway
    python -m repro sweep ...      # parallel seeded experiment sweeps
    python -m repro chaos ...      # fault-injection soak + digest gate
    python -m repro tournament ... # recovery-policy tournament gate
    python -m repro report ...     # packet flight recorder report / gate
    python -m repro scale ...      # multi-fidelity sharding digest gate
    python -m repro lint ...       # reprolint static-analysis gate
    python -m repro mc ...         # reprocheck model-checking gate
    python -m repro list           # show this list

``sweep`` is the experiment harness: it fans a seed sweep of a named
experiment (e3, a3, soak, perf) across worker processes, prints
mean +/- 95% CI per grid point, and writes a machine-readable
``BENCH_<name>.json``:

    python -m repro sweep --bench e3 --seeds 8 --procs 4

``tournament`` is the recovery-policy gate: every (rto x cc x
link-timer) policy combination runs against the hostile-link fault
plans at 1200 and 9600 bps, on 1 and N worker processes; the gate
requires zero crashes, span conservation, byte-identical digests
across layouts, and the §4.1 headline (AdaptiveRto+Reno strictly
beats FixedRto+NoCongestion on goodput under the storm plan),
writing per-cell Student-t CIs to ``BENCH_tournament.json``:

    python -m repro tournament --seeds 3

``report`` is the observability front door: it runs an instrumented
gateway scenario and prints the flight recorder's report (top talkers,
drop reasons, latency histograms, per-hop percentiles), optionally
capturing the radio channel to a Wireshark-readable pcap, the sampled
time-series (``--timeline``) and a sim-time profile in folded-stacks
format (``--flame``).  With ``--bench`` it becomes the observability
gate: the ``obs`` experiment over N seeds on 1 and 2 worker processes
requiring span conservation and byte-identical digests across layouts,
a sharded 2-region trace gate across 1/2/4 processes, and the paired
obs-overhead measurement:

    python -m repro report --pcap capture.pcap --timeline --flame
    python -m repro report --bench --seeds 3

``scale`` is the multi-fidelity sharding gate: every seed's regional
layout runs with 1, 2 and 4 worker processes and must produce
byte-identical merged digests; a fault-free scenario must produce
identical metrics at ``per_char`` and ``frame`` serial fidelity; and a
headline run with thousands of flow-level background stations records
wall-clock and events/s into ``BENCH_scale.json``:

    python -m repro scale --seeds 3 --flow 1000

``lint`` is the reprolint static-analysis gate: AST passes for
determinism, sim-safety, and protocol invariants, exiting nonzero on
any finding not baselined or inline-suppressed:

    python -m repro lint src --format json

``mc`` is the reprocheck model-checking gate: bounded explicit-state
exploration of the preset worlds (2-station LAPB handshake, 3-station
hidden terminal, TCP transfer under lossy choice) with zero-violation
gating, the partial-order-reduction ratio measured against a
no-reduction baseline walk, and a mutation gate proving the checker
finds three seeded protocol bugs with deterministically replayable
counterexamples:

    python -m repro mc
    python -m repro mc --worlds lapb2 --counterexamples

The fuller scenarios (BBS, emergency net, NET/ROM node network, ...)
live as scripts in the repository's examples/ directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _quickstart() -> None:
    from repro.apps.ping import Pinger
    from repro.core.topology import build_figure1_testbed
    from repro.sim.clock import SECOND

    testbed = build_figure1_testbed(seed=7)
    pinger = Pinger(testbed.host.stack)
    pinger.send("44.24.0.5", count=3, interval=20 * SECOND)
    testbed.sim.run(until=120 * SECOND)
    print(f"ping 44.24.0.5: {pinger.received}/{pinger.sent} replies, "
          f"mean RTT {pinger.mean_rtt_seconds():.2f}s at 1200 bps")
    for record in testbed.tracer.select(category="radio.tx"):
        print(" ", record.render())


def _gateway() -> None:
    from repro.apps.telnet import TelnetClient, TelnetServer
    from repro.core.topology import build_gateway_testbed
    from repro.sim.clock import SECOND

    testbed = build_gateway_testbed(seed=42)
    TelnetServer(testbed.ether_host)
    client = TelnetClient(testbed.pc.stack, testbed.ETHER_HOST_IP)
    client.type_lines(["cliff", "echo hello from packet radio", "logout"])
    testbed.sim.run(until=900 * SECOND)
    print(client.transcript_text())
    print(f"[gateway forwarded "
          f"{testbed.gateway.stack.counters['ip_forwarded']} datagrams]")


def _observatory() -> None:
    from repro.apps.ping import Pinger
    from repro.core.topology import build_gateway_testbed
    from repro.sim.clock import SECOND
    from repro.tools.axdump import ChannelMonitor
    from repro.tools.netstat import format_netstat

    testbed = build_gateway_testbed(seed=88)
    monitor = ChannelMonitor(testbed.channel)
    pinger = Pinger(testbed.pc.stack)
    pinger.send(testbed.ETHER_HOST_IP, count=2, interval=30 * SECOND)
    testbed.sim.run(until=180 * SECOND)
    print(monitor.render())
    print()
    print(format_netstat(testbed.gateway.stack))


def _sweep(argv: List[str]) -> int:
    """``python -m repro sweep``: run a seeded experiment sweep."""
    from repro.harness import (
        EXPERIMENTS,
        SweepSpec,
        bench_json_path,
        run_sweep,
        write_bench_json,
    )
    from repro.harness.runner import seeds_from_count

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Fan a seeded experiment sweep across worker "
                    "processes and write BENCH_<name>.json.",
    )
    parser.add_argument("--bench", default=None,
                        help="experiment name (see --list)")
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="number of seeds (default: per experiment)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed value (default: 1)")
    parser.add_argument("--procs", type=int, default=1,
                        help="worker processes (default: 1)")
    parser.add_argument("--out", default=None,
                        help="results path (default: ./BENCH_<name>.json)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list or args.bench is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[name]
            print(f"  {name:6s} {experiment.description} "
                  f"[{len(experiment.grid)} grid points, "
                  f"default {experiment.default_seed_count} seeds]")
        return 0 if args.list else 2
    if args.bench not in EXPERIMENTS:
        print(f"unknown bench {args.bench!r}; try --list", file=sys.stderr)
        return 2

    if args.seeds is not None and args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.procs < 1:
        print("--procs must be >= 1", file=sys.stderr)
        return 2

    experiment = EXPERIMENTS[args.bench]
    seed_count = (args.seeds if args.seeds is not None
                  else experiment.default_seed_count)
    spec = SweepSpec(
        bench=args.bench,
        seeds=seeds_from_count(seed_count, base=args.seed_base),
        procs=args.procs,
    )
    total = len(experiment.grid) * seed_count
    print(f"sweep {args.bench}: {len(experiment.grid)} grid points x "
          f"{seed_count} seeds = {total} runs on {args.procs} process(es)")

    done = {"count": 0}

    def progress(record) -> None:
        done["count"] += 1
        print(f"  [{done['count']:3d}/{total}] seed={record.seed} "
              f"{record.params} ({record.wall_seconds:.2f}s)")

    result = run_sweep(spec, progress=progress)

    print(f"\n{args.bench}: mean ± 95% CI over {seed_count} seeds")
    for key, params in result.grid_points():
        print(f"  {params}")
        for name, stat in sorted(result.aggregates[key].items()):
            print(f"    {name:28s} {stat.render()}")
    out = args.out or bench_json_path(args.bench)
    path = write_bench_json(out, result)
    print(f"\nwall {result.wall_seconds:.1f}s, "
          f"{result.workers_used} worker process(es); wrote {path}")
    return 0


def _chaos(argv: List[str]) -> int:
    """``python -m repro chaos``: the fault-injection soak gate.

    Runs the ``chaos`` experiment over N seeds twice -- once inline,
    once across worker processes -- and requires (1) zero crashed runs,
    (2) byte-identical per-seed metric digests across the two layouts,
    (3) at least one watchdog recovery within the documented bound, and
    (4) successful post-recovery end-to-end pings in every run.
    """
    from repro.harness import (
        SweepSpec,
        bench_json_path,
        run_sweep,
        sweep_digests,
        write_bench_json,
    )
    from repro.harness.results import sweep_to_dict
    from repro.harness.runner import seeds_from_count

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Deterministic chaos soak: fault injection + "
                    "watchdog recovery, digest-compared across "
                    "process layouts.",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="number of seeds (default: 3)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed value (default: 1)")
    parser.add_argument("--stations", type=int, default=50,
                        help="station population (default: 50)")
    parser.add_argument("--duration", type=float, default=240.0,
                        help="scenario seconds per run (default: 240)")
    parser.add_argument("--recovery-bound", type=float, default=60.0,
                        help="max allowed watchdog recovery time in "
                             "simulated seconds (default: 60)")
    parser.add_argument("--out", default=None,
                        help="results path (default: ./BENCH_chaos.json)")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2

    grid = ({"stations": args.stations,
             "duration_seconds": args.duration},)
    seeds = seeds_from_count(args.seeds, base=args.seed_base)
    failures: List[str] = []
    results = {}
    for procs in (1, 2):
        print(f"chaos: {args.seeds} seed(s) x {args.stations} stations, "
              f"procs={procs}")
        spec = SweepSpec(bench="chaos", seeds=seeds, grid=grid, procs=procs)
        result = run_sweep(spec, progress=lambda r: print(
            f"  seed={r.seed} ({r.wall_seconds:.1f}s) "
            f"recoveries={r.metrics.get('watchdog_recoveries', 0):.0f} "
            f"post-pings={r.metrics.get('post_fault_pings_ok', 0):.0f}"))
        results[procs] = result

    digests_1 = sweep_digests(results[1])
    digests_2 = sweep_digests(results[2])
    for key, digest in sorted(digests_1.items()):
        if digests_2.get(key) != digest:
            failures.append(
                f"digest mismatch at {key}: procs=1 {digest[:12]} "
                f"!= procs=2 {(digests_2.get(key) or 'missing')[:12]}")
    for record in results[1].records:
        where = f"seed={record.seed}"
        metrics = record.metrics
        if metrics.get("watchdog_recoveries", 0) < 1:
            failures.append(f"{where}: watchdog never recovered the TNC")
        elif metrics.get("watchdog_last_recovery_s", 0) > args.recovery_bound:
            failures.append(
                f"{where}: recovery took "
                f"{metrics['watchdog_last_recovery_s']:.1f}s "
                f"(bound {args.recovery_bound:.0f}s)")
        if metrics.get("post_fault_pings_ok", 0) < 1:
            failures.append(f"{where}: no post-recovery ping succeeded")

    document = sweep_to_dict(results[2])
    document["digests"] = {
        "procs1": digests_1,
        "procs2": digests_2,
        "identical": digests_1 == digests_2,
    }
    out = args.out or bench_json_path("chaos")
    path = write_bench_json(out, document, bench="chaos")

    if failures:
        print("\nchaos gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(f"wrote {path}")
        return 1
    print(f"\nchaos gate passed: {len(digests_1)} run(s), digests "
          f"identical across layouts; wrote {path}")
    return 0


def _tournament(argv: List[str]) -> int:
    """``python -m repro tournament``: the recovery-policy tournament gate.

    Sweeps every (rto x cc x link-timer) policy combination across the
    hostile-link fault plans and both link speeds, twice -- once inline,
    once across worker processes -- and requires (1) zero crashed runs,
    (2) byte-identical per-cell metric digests across the two layouts,
    (3) span conservation in every run, and (4) the §4.1 headline:
    AdaptiveRto+Reno strictly beats FixedRto+NoCongestion on mean
    goodput under the storm plan at 1200 bps.  Writes
    ``BENCH_tournament.json`` with goodput/latency/retransmit
    Student-t CIs per cell.
    """
    import json

    from repro.faults.plan import TOURNAMENT_PLANS
    from repro.harness import (
        SweepSpec,
        bench_json_path,
        run_sweep,
        sweep_digests,
        write_bench_json,
    )
    from repro.harness.results import sweep_to_dict
    from repro.harness.runner import seeds_from_count

    parser = argparse.ArgumentParser(
        prog="python -m repro tournament",
        description="Recovery-policy tournament: (rto x cc x link-timer) "
                    "across hostile-link fault plans and link speeds, "
                    "digest-compared across process layouts.",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="number of seeds per cell (default: 3)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed value (default: 1)")
    parser.add_argument("--plans", default=",".join(TOURNAMENT_PLANS),
                        help="comma-separated fault plans "
                             f"(default: {','.join(TOURNAMENT_PLANS)})")
    parser.add_argument("--speeds", default="1200,9600",
                        help="comma-separated link bit rates "
                             "(default: 1200,9600)")
    parser.add_argument("--duration", type=float, default=180.0,
                        help="scenario seconds per run (default: 180)")
    parser.add_argument("--procs", type=int, default=2,
                        help="worker processes for the parallel layout "
                             "(default: 2)")
    parser.add_argument("--out", default=None,
                        help="results path (default: "
                             "./BENCH_tournament.json)")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    plans = tuple(p.strip() for p in args.plans.split(",") if p.strip())
    unknown = [p for p in plans if p not in TOURNAMENT_PLANS]
    if not plans or unknown:
        print(f"unknown plan(s) {unknown}; known: "
              f"{', '.join(TOURNAMENT_PLANS)}", file=sys.stderr)
        return 2
    speeds = tuple(int(s) for s in args.speeds.split(",") if s.strip())

    def cell(rto: str, cc: str, link_timer: str, plan: str,
             bit_rate: int) -> Dict[str, object]:
        return {"rto": rto, "cc": cc, "link_timer": link_timer,
                "plan": plan, "bit_rate": bit_rate,
                "duration_seconds": args.duration}

    grid = tuple(
        cell(rto, cc, link_timer, plan, bit_rate)
        for plan in plans
        for bit_rate in speeds
        for rto in ("fixed", "adaptive")
        for cc in ("none", "reno", "paced")
        for link_timer in ("fixed", "adaptive")
    )
    seeds = seeds_from_count(args.seeds, base=args.seed_base)
    total = len(grid) * args.seeds
    failures: List[str] = []
    results = {}
    for procs in (1, args.procs):
        print(f"tournament: {len(grid)} cells x {args.seeds} seed(s) "
              f"= {total} runs, procs={procs}")
        spec = SweepSpec(bench="tournament", seeds=seeds, grid=grid,
                         procs=procs)
        try:
            results[procs] = run_sweep(spec)
        except Exception as exc:  # a crashed cell fails the whole gate
            print(f"\ntournament gate FAILED: run crashed under "
                  f"procs={procs}: {exc!r}")
            return 1

    result = results[1]
    print(f"\ntournament: goodput/latency/retransmits, mean ± 95% CI "
          f"over {args.seeds} seed(s)")
    for key, params in result.grid_points():
        aggs = result.aggregates[key]
        goodput = aggs["goodput_bytes_per_s"]
        latency = aggs.get("tcp_transfer_mean_latency_s")
        rexmit = aggs["tcp_retransmissions"]
        print(f"  {params['plan']:9s} {params['bit_rate']:>4d}bps "
              f"rto={params['rto']:8s} cc={params['cc']:5s} "
              f"t1={params['link_timer']:8s} "
              f"goodput={goodput.render():22s} "
              f"rexmit={rexmit.render():18s} "
              f"latency={latency.render() if latency else '-'}")

    digests_1 = sweep_digests(results[1])
    digests_2 = sweep_digests(results[args.procs])
    for key, digest in sorted(digests_1.items()):
        if digests_2.get(key) != digest:
            failures.append(
                f"digest mismatch at {key}: procs=1 {digest[:12]} "
                f"!= procs={args.procs} "
                f"{(digests_2.get(key) or 'missing')[:12]}")
    for record in result.records:
        if record.metrics.get("obs_conservation_ok", 0) < 1:
            failures.append(f"seed={record.seed} {record.params}: "
                            f"span conservation violated")

    # The §4.1 headline: on the storm plan at 1200 bps, adaptive RTO
    # with Reno must strictly beat the fixed-RTO uncongested baseline.
    headline = {}
    if "storm" in plans and 1200 in speeds:
        champion_key = json.dumps(
            cell("adaptive", "reno", "fixed", "storm", 1200),
            sort_keys=True, default=str)
        baseline_key = json.dumps(
            cell("fixed", "none", "fixed", "storm", 1200),
            sort_keys=True, default=str)
        champion = result.aggregates[champion_key]["goodput_bytes_per_s"]
        baseline = result.aggregates[baseline_key]["goodput_bytes_per_s"]
        headline = {
            "adaptive_reno_goodput": champion.as_dict(),
            "fixed_none_goodput": baseline.as_dict(),
            "adaptive_beats_fixed": champion.mean > baseline.mean,
        }
        print(f"\n  §4.1 headline (storm @ 1200 bps): "
              f"AdaptiveRto+Reno {champion.render()} vs "
              f"FixedRto+NoCongestion {baseline.render()} B/s")
        if champion.mean <= baseline.mean:
            failures.append(
                f"§4.1 headline violated: AdaptiveRto+Reno goodput "
                f"{champion.mean:.1f} B/s does not beat "
                f"FixedRto+NoCongestion {baseline.mean:.1f} B/s "
                f"under the storm plan")

    document = sweep_to_dict(results[args.procs])
    # 360 runs x ~180 metrics (mostly obs histogram buckets) makes a
    # multi-megabyte artifact; keep the recovery-relevant slice.  The
    # digests below still cover the full metric set of every run.
    keep_prefixes = ("goodput_", "tcp_", "lapb_", "fault",
                     "obs_conservation_", "channel_")
    keep_exact = {"obs_born_total", "obs_delivered", "obs_dropped",
                  "obs_drop_link_giveup"}
    for section in ("runs", "aggregates"):
        for entry in document[section]:
            entry["metrics"] = {
                name: value for name, value in entry["metrics"].items()
                if name in keep_exact or name.startswith(keep_prefixes)}
    document["digests"] = {
        "procs1": digests_1,
        f"procs{args.procs}": digests_2,
        "identical": digests_1 == digests_2,
    }
    document["headline"] = headline
    out = args.out or bench_json_path("tournament")
    path = write_bench_json(out, document, bench="tournament")

    if failures:
        print("\ntournament gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(f"wrote {path}")
        return 1
    print(f"\ntournament gate passed: {len(grid)} cell(s) x "
          f"{args.seeds} seed(s), zero crashes, spans conserved, "
          f"digests identical across layouts; wrote {path}")
    return 0


def _report(argv: List[str]) -> int:
    """``python -m repro report``: the packet flight recorder front door.

    Without ``--bench``: run one instrumented gateway scenario and print
    the human-readable observability report; ``--pcap PATH`` also taps
    the radio channel into a Wireshark-compatible capture,
    ``--timeline`` appends the sampled time-series, and ``--flame``
    attaches the sim-time profiler and appends folded-stacks text.
    A run that cannot back a trustworthy report (observability disabled
    via ``--no-observe``, or a wrapped span ring) exits 2 with a
    one-line error instead of a traceback or a partial answer.

    With ``--bench``: the observability gate.  (1) The ``obs``
    experiment (plain + chaos variants) over N seeds twice -- once
    inline, once across worker processes -- requiring span conservation
    (``obs_conservation_ok``) with at least one packet born in every
    run and byte-identical per-seed metric digests across the two
    layouts.  (2) The sharded-trace gate: a 2-region observed chaos
    layout per seed, run with 1, 2 and 4 worker processes, requiring
    byte-identical merged digests and cross-shard span conservation
    (``total/obs_sharded_conservation_ok``).  (3) The paired-round
    obs-overhead measurement (recorded, not gated here -- the perf
    bench asserts the budget).  Writes ``BENCH_obs.json``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Packet flight recorder: lifecycle report, pcap "
                    "export, and (with --bench) the span-conservation "
                    "digest gate.",
    )
    parser.add_argument("--bench", action="store_true",
                        help="run the observability gate instead of a "
                             "single report")
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for the single-report run (default: 1)")
    parser.add_argument("--variant", choices=("e3", "chaos"), default="chaos",
                        help="scenario variant for the single report "
                             "(default: chaos)")
    parser.add_argument("--stations", type=int, default=8,
                        help="station population (default: 8)")
    parser.add_argument("--duration", type=float, default=150.0,
                        help="scenario seconds per run (default: 150)")
    parser.add_argument("--pcap", default=None, metavar="PATH",
                        help="also write a channel capture (libpcap, "
                             "LINKTYPE_AX25_KISS) to PATH")
    parser.add_argument("--timeline", action="store_true",
                        help="append the sampled time-series (per-"
                             "interval born/delivered/dropped/shed)")
    parser.add_argument("--flame", action="store_true",
                        help="attach the sim-time profiler and append "
                             "folded-stacks text (layer;component;site)")
    parser.add_argument("--no-observe", action="store_true",
                        help="run without the flight recorder (the "
                             "report then fails with a clear error; "
                             "useful with --flame)")
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="gate mode: number of seeds (default: 3)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="gate mode: first seed value (default: 1)")
    parser.add_argument("--out", default=None,
                        help="gate mode: results path "
                             "(default: ./BENCH_obs.json)")
    args = parser.parse_args(argv)

    if not args.bench:
        from repro.harness.experiments import OBS_MIX
        from repro.obs.pcap import PcapWriter
        from repro.obs.report import ReportError, render_report, require_reportable
        from repro.tools.axdump import ChannelMonitor
        from repro.workload.scenario import Scenario, build_scenario

        scenario = Scenario(
            name=f"report-{args.variant}", topology="gateway",
            stations=args.stations, duration_seconds=args.duration,
            mix=OBS_MIX, seed=args.seed, observe=not args.no_observe,
        )
        if args.variant == "chaos":
            from dataclasses import replace

            from repro.faults import chaos_plan
            plan = chaos_plan(int(args.duration), gateway="gateway",
                              stations=["WL0"])
            scenario = replace(scenario, fault_plan=plan, watchdog=True,
                               shed_threshold_bytes=2048)
        run = build_scenario(scenario)
        profiler = None
        if args.flame:
            from repro.obs.profile import SimProfiler
            profiler = SimProfiler()
            run.sim.profiler = profiler
        pcap = PcapWriter() if args.pcap else None
        if pcap is not None:
            ChannelMonitor(run.testbed.channel, pcap=pcap)
        run.run()
        if profiler is not None:
            print("sim-time profile (folded stacks: layer;component;site)")
            print(profiler.render_flame())
            print()
        try:
            recorder = require_reportable(run.recorder)
        except ReportError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        print(render_report(
            recorder,
            title=f"observability report: {scenario.name} "
                  f"seed={args.seed}"))
        if args.timeline and run.timeseries is not None:
            print()
            print("timeline (per-interval deltas)")
            print(run.timeseries.render())
        if pcap is not None:
            size = pcap.save(args.pcap)
            print(f"\nwrote {pcap.frames} frame(s) / {size} bytes to "
                  f"{args.pcap} (libpcap, LINKTYPE_AX25_KISS)")
        return 0

    from repro.harness import (
        SweepSpec,
        bench_json_path,
        run_sweep,
        sweep_digests,
        write_bench_json,
    )
    from repro.harness.results import sweep_to_dict
    from repro.harness.runner import seeds_from_count

    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    seeds = seeds_from_count(args.seeds, base=args.seed_base)
    failures: List[str] = []
    results = {}
    for procs in (1, 2):
        print(f"obs gate: {args.seeds} seed(s) x 2 variants, procs={procs}")
        spec = SweepSpec(bench="obs", seeds=seeds, procs=procs)
        result = run_sweep(spec, progress=lambda r: print(
            f"  seed={r.seed} {r.params} ({r.wall_seconds:.1f}s) "
            f"born={r.metrics.get('obs_born_total', 0):.0f} "
            f"delivered={r.metrics.get('obs_delivered', 0):.0f} "
            f"conservation={r.metrics.get('obs_conservation_ok', 0):.0f}"))
        results[procs] = result

    digests_1 = sweep_digests(results[1])
    digests_2 = sweep_digests(results[2])
    for key, digest in sorted(digests_1.items()):
        if digests_2.get(key) != digest:
            failures.append(
                f"digest mismatch at {key}: procs=1 {digest[:12]} "
                f"!= procs=2 {(digests_2.get(key) or 'missing')[:12]}")
    for record in results[1].records:
        where = f"seed={record.seed} {record.params}"
        metrics = record.metrics
        if metrics.get("obs_conservation_ok", 0) < 1:
            failures.append(f"{where}: span conservation violated")
        if metrics.get("obs_born_total", 0) < 1:
            failures.append(f"{where}: no packets born (dead scenario)")

    # Sharded-trace gate: a two-region observed chaos layout per seed,
    # run with 1/2/4 worker processes.  Cross-shard span conservation
    # (born = delivered + dropped + shed + in-flight over the *merged*
    # run, with handoffs balancing adoptions) must hold and the merged
    # digests must be byte-identical across process counts.
    from dataclasses import replace as dc_replace

    from repro.faults import FaultPlan, FaultSpec
    from repro.harness import metrics_digest
    from repro.scale.regions import ScaleLayout
    from repro.scale.shard import run_sharded
    from repro.sim.clock import SECOND

    shard_template = ScaleLayout(
        regions=2, stations_per_region=2, duration_seconds=40.0,
        drain_seconds=20.0, observe=True,
        fault_plan=FaultPlan((
            FaultSpec(kind="partition", target="GW0", peer="WL0",
                      at=5 * SECOND, duration=15 * SECOND),
            FaultSpec(kind="serial_noise", target="gateway",
                      at=8 * SECOND, duration=10 * SECOND,
                      probability=0.05),
        )))
    shard_procs = (1, 2, 4)
    shard_digests: Dict[str, Dict[str, str]] = {
        f"procs{procs}": {} for procs in shard_procs}
    shard_runs: Dict[str, Dict[str, float]] = {}
    print(f"sharded-trace gate: {args.seeds} seed(s) x 2 regions, "
          f"procs={shard_procs}")
    for seed in seeds:
        layout = dc_replace(shard_template, seed=seed)
        per_procs = {}
        for procs in shard_procs:
            metrics = run_sharded(layout, procs=procs)
            digest = metrics_digest(metrics)
            per_procs[procs] = digest
            shard_digests[f"procs{procs}"][f"seed={seed}"] = digest
            if procs != 1:
                continue
            shard_runs[f"seed={seed}"] = {
                key: value for key, value in sorted(metrics.items())
                if key.startswith("total/obs_")}
            born = metrics.get("total/obs_born_total", 0)
            print(f"  seed={seed} born={born:.0f} "
                  f"handed-off={metrics.get('total/obs_handed_off', 0):.0f} "
                  f"adopted={metrics.get('total/obs_adopted', 0):.0f} "
                  f"digest={digest[:12]}")
            if metrics.get("total/obs_sharded_conservation_ok", 0) < 1:
                failures.append(f"shard seed={seed}: cross-shard span "
                                f"conservation violated")
            if born < 1:
                failures.append(f"shard seed={seed}: no packets born")
        if len(set(per_procs.values())) != 1:
            failures.append(
                f"shard seed={seed}: merged digests differ across "
                "process counts "
                + " ".join(f"procs={p}:{d[:12]}"
                           for p, d in sorted(per_procs.items())))

    # Paired-round overhead columns (recorded for trend tracking; the
    # perf microbench asserts the <10% budget with more rounds).
    from repro.obs.overhead import measure as measure_overhead

    overhead = measure_overhead(rounds=5)
    print("obs overhead (paired rounds, vs bracketing disabled runs): "
          f"ring {overhead['obs_enabled_overhead_median_pct']:+.1f}% "
          f"(mean {overhead['obs_enabled_overhead_pct']:+.1f}"
          f"±{overhead['obs_enabled_overhead_ci95_pct']:.1f}) "
          f"objects {overhead['obs_enabled_overhead_objects_median_pct']:+.1f}% "
          f"noise {overhead['obs_disabled_overhead_pct']:+.1f}%"
          f"±{overhead['obs_disabled_overhead_ci95_pct']:.1f}")

    document = sweep_to_dict(results[2])
    document["digests"] = {
        "procs1": digests_1,
        "procs2": digests_2,
        "identical": digests_1 == digests_2,
    }
    document["sharded"] = {
        "runs": shard_runs,
        "digests": {
            **shard_digests,
            "identical": all(
                shard_digests[f"procs{procs}"] == shard_digests["procs1"]
                for procs in shard_procs),
        },
    }
    document["overhead"] = overhead
    out = args.out or bench_json_path("obs")
    path = write_bench_json(out, document, bench="obs")

    if failures:
        print("\nobs gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(f"wrote {path}")
        return 1
    print(f"\nobs gate passed: {len(digests_1)} run(s) conserve spans, "
          f"{len(shard_runs)} sharded run(s) conserve across regions, "
          f"digests identical across layouts; wrote {path}")
    return 0


def _scale(argv: List[str]) -> int:
    """``python -m repro scale``: the multi-fidelity sharding gate.

    Three checks, all digest-based:

    1. **Shard invariance** -- every seed's regional layout is run with
       1, 2 and 4 worker processes; the merged metric digests must be
       byte-identical (and traffic must actually cross regions).
    2. **Fidelity equivalence** -- one seeded fault-free gateway
       scenario is run at ``per_char`` and ``frame`` serial fidelity;
       all metrics except event-queue bookkeeping must be identical.
    3. **Headline scale run** -- a mixed-fidelity layout with thousands
       of flow-level background stations must complete, recording
       wall-clock and simulated-events/s in ``BENCH_scale.json``.
    """
    import time
    from dataclasses import replace as dc_replace

    from repro.harness import bench_json_path, metrics_digest, write_bench_json
    from repro.scale.fidelity import fidelity_comparable
    from repro.scale.regions import ScaleLayout
    from repro.scale.shard import run_sharded
    from repro.workload.scenario import Scenario, run_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro scale",
        description="Multi-fidelity sharded regional runner: digest "
                    "gates for shard invariance and frame-fidelity "
                    "equivalence, plus a headline scale run.",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="number of seeds (default: 3)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed value (default: 1)")
    parser.add_argument("--regions", type=int, default=2,
                        help="regions / shards (default: 2)")
    parser.add_argument("--stations", type=int, default=2,
                        help="per-char/frame foreground stations per "
                             "region (default: 2)")
    parser.add_argument("--flow", type=int, default=1000,
                        help="flow-level background stations across all "
                             "regions (default: 1000)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds of offered load per run "
                             "(default: 60)")
    parser.add_argument("--fidelity", choices=("per_char", "frame"),
                        default="per_char",
                        help="foreground serial fidelity for the "
                             "invariance runs (default: per_char)")
    parser.add_argument("--headline-flow", type=int, default=5000,
                        metavar="N",
                        help="background stations in the headline scale "
                             "run; 0 skips it (default: 5000)")
    parser.add_argument("--out", default=None,
                        help="results path (default: ./BENCH_scale.json)")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2

    failures: List[str] = []
    layouts = ScaleLayout(
        regions=args.regions, stations_per_region=args.stations,
        flow_stations=args.flow, duration_seconds=args.duration,
        fidelity=args.fidelity,
    )
    proc_counts = (1, 2, 4)
    digests: Dict[str, Dict[str, str]] = {
        f"procs{procs}": {} for procs in proc_counts}
    runs: Dict[str, Dict[str, float]] = {}
    for index in range(args.seeds):
        seed = args.seed_base + index
        layout = dc_replace(layouts, seed=seed)
        per_procs = {}
        for procs in proc_counts:
            started = time.perf_counter()
            metrics = run_sharded(layout, procs=procs)
            wall = time.perf_counter() - started
            digest = metrics_digest(metrics)
            per_procs[procs] = digest
            digests[f"procs{procs}"][f"seed={seed}"] = digest
            print(f"  seed={seed} procs={procs} digest={digest[:12]} "
                  f"({wall:.1f}s) pings="
                  f"{metrics.get('total/pings_received', 0):.0f}/"
                  f"{metrics.get('total/pings_sent', 0):.0f}")
            if procs == 1:
                runs[f"seed={seed}"] = metrics
                if metrics.get("total/pings_received", 0) < 1:
                    failures.append(
                        f"seed={seed}: no cross-region ping completed")
        if len(set(per_procs.values())) != 1:
            failures.append(
                f"seed={seed}: digests differ across process counts "
                + " ".join(f"procs={p}:{d[:12]}"
                           for p, d in sorted(per_procs.items())))

    # Fidelity equivalence on a fault-free single-simulator scenario:
    # the frame path must be byte-identical to the per-char path in
    # every metric except event-queue bookkeeping.
    fid_scenario = Scenario(
        name="scale-fidelity", topology="gateway", stations=4,
        duration_seconds=min(args.duration, 60.0), seed=args.seed_base,
    )
    per_char = run_scenario(fid_scenario)
    frame = run_scenario(dc_replace(fid_scenario, fidelity="frame"))
    fid_digests = {
        "per_char": metrics_digest(fidelity_comparable(per_char)),
        "frame": metrics_digest(fidelity_comparable(frame)),
    }
    fid_identical = fid_digests["per_char"] == fid_digests["frame"]
    saved = per_char["events_executed"] - frame["events_executed"]
    print(f"  fidelity: per_char={fid_digests['per_char'][:12]} "
          f"frame={fid_digests['frame'][:12]} "
          f"({saved:.0f} events saved)")
    if not fid_identical:
        failures.append("frame fidelity digest differs from per_char "
                        "on a fault-free line")

    headline: Dict[str, float] = {}
    if args.headline_flow > 0:
        layout = dc_replace(
            layouts, seed=args.seed_base, fidelity="frame",
            flow_stations=args.headline_flow)
        total_stations = (args.headline_flow
                          + args.regions * args.stations + args.regions)
        print(f"  headline: {total_stations} stations "
              f"({args.headline_flow} flow-level), "
              f"{args.regions} shard(s), {args.duration:.0f}s simulated")
        started = time.perf_counter()
        metrics = run_sharded(layout, procs=min(4, args.regions))
        wall = max(time.perf_counter() - started, 1e-9)
        events = metrics.get("total/events_executed", 0.0)
        headline = {
            "stations": float(total_stations),
            "flow_stations": float(args.headline_flow),
            "regions": float(args.regions),
            "sim_seconds": float(args.duration),
            "wall_seconds": wall,
            "events_executed": events,
            "events_per_s": events / wall,
            "pings_received": metrics.get("total/pings_received", 0.0),
            "flow_served": metrics.get("total/flow_served", 0.0),
        }
        print(f"  headline: {events:.0f} events in {wall:.1f}s wall "
              f"({events / wall:,.0f} events/s)")
        if metrics.get("total/pings_received", 0) < 1:
            failures.append("headline run: no cross-region ping completed")

    identical = all(digests[f"procs{procs}"] == digests["procs1"]
                    for procs in proc_counts)
    document: Dict[str, object] = {
        "runs": runs,
        "digests": {**digests, "identical": identical},
        "fidelity": {**fid_digests, "identical": fid_identical},
        "headline": headline,
        "params": {
            "seeds": args.seeds, "regions": args.regions,
            "stations_per_region": args.stations,
            "flow_stations": args.flow,
            "duration_seconds": args.duration,
            "fidelity": args.fidelity,
        },
    }
    out = args.out or bench_json_path("scale")
    path = write_bench_json(out, document, bench="scale")

    if failures:
        print("\nscale gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(f"wrote {path}")
        return 1
    print(f"\nscale gate passed: {args.seeds} seed(s) invariant across "
          f"procs {proc_counts}, frame fidelity digest-equal; wrote {path}")
    return 0


SCENARIOS: Dict[str, Callable[[], None]] = {
    "quickstart": _quickstart,
    "gateway": _gateway,
    "observatory": _observatory,
}


def _mc(argv: List[str]) -> int:
    """``python -m repro mc``: the model-checking gate.

    Explores every preset world to fixpoint (or budget) and requires
    zero property violations; measures the partial-order-reduction
    ratio on the lapb2 execution tree and requires >= 2x; runs the
    mutation gate (three seeded bugs, each of which the checker must
    find and replay deterministically).  Writes ``BENCH_mc.json``.
    """
    from repro.check import Budget, Explorer, build_world
    from repro.check.mutations import MUTATIONS
    from repro.check.replay import replay_violation
    from repro.check.worlds import WORLDS
    from repro.harness import bench_json_path, write_bench_json

    parser = argparse.ArgumentParser(
        prog="python -m repro mc",
        description="Bounded explicit-state model checking of the "
                    "protocol stack: preset worlds, POR ratio, "
                    "mutation gate.",
    )
    parser.add_argument("--worlds", default="lapb2,hidden3,tcpxfer",
                        help="comma-separated preset worlds "
                             "(default: lapb2,hidden3,tcpxfer; "
                             f"known: {','.join(sorted(WORLDS))})")
    parser.add_argument("--max-states", type=int, default=50_000,
                        help="state budget per exploration "
                             "(default: 50000)")
    parser.add_argument("--max-depth", type=int, default=400,
                        help="path depth budget (default: 400)")
    parser.add_argument("--max-seconds", type=float, default=60.0,
                        help="wall-clock budget per exploration "
                             "(default: 60)")
    parser.add_argument("--naive-cap", type=int, default=8000,
                        help="state cap for the no-reduction baseline "
                             "walk; hitting it makes the reported POR "
                             "ratio a lower bound (default: 8000)")
    parser.add_argument("--skip-por-ratio", action="store_true",
                        help="skip the POR-vs-naive tree measurement")
    parser.add_argument("--skip-mutation-gate", action="store_true",
                        help="skip the seeded-bug mutation gate")
    parser.add_argument("--counterexamples", action="store_true",
                        help="print the shortest counterexample and "
                             "replay timeline for any violation")
    parser.add_argument("--out", default=None,
                        help="results path (default: ./BENCH_mc.json)")
    args = parser.parse_args(argv)

    names = [name.strip() for name in args.worlds.split(",") if name.strip()]
    unknown = [name for name in names if name not in WORLDS]
    if unknown:
        print(f"unknown world(s): {', '.join(unknown)} "
              f"(known: {', '.join(sorted(WORLDS))})", file=sys.stderr)
        return 2

    def budget(max_states: int) -> Budget:
        return Budget(max_states=max_states,
                      max_depth=args.max_depth,
                      max_wall_seconds=args.max_seconds)

    failures: List[str] = []
    presets = []
    for name in names:
        explorer = Explorer(lambda n=name: build_world(n), por=True,
                            budget=budget(args.max_states))
        result = explorer.run()
        summary = result.summary()
        presets.append(summary)
        status = "fixpoint" if result.complete else "budget"
        print(f"mc: {name}: {result.states} states, "
              f"{result.transitions} transitions "
              f"({result.states_per_second:.0f} states/s, {status}), "
              f"{len(result.violations)} violation(s)")
        for violation in result.violations:
            failures.append(f"{name}: {violation.render().splitlines()[0]}")
        shortest = result.shortest_violation()
        if shortest is not None and args.counterexamples:
            print(shortest.render())
            confirmation = replay_violation(
                lambda n=name: build_world(n), shortest)
            print(confirmation.report())
            print(confirmation.timeline())

    por_ratio = None
    if not args.skip_por_ratio:
        tree = Explorer(lambda: build_world("lapb2"), por=True, dedup=False,
                        budget=budget(args.max_states))
        tree_result = tree.run()
        naive = Explorer(lambda: build_world("lapb2"), por=False,
                         dedup=False, budget=budget(args.naive_cap))
        naive_result = naive.run()
        ratio = (naive_result.states / tree_result.states
                 if tree_result.states else 0.0)
        por_ratio = {
            "world": "lapb2",
            "por_states": tree_result.states,
            "por_transitions": tree_result.transitions,
            "naive_states": naive_result.states,
            "naive_transitions": naive_result.transitions,
            "ratio": round(ratio, 2),
            # A truncated baseline still proves the ratio's floor.
            "lower_bound": not naive_result.complete,
        }
        bound = ">=" if not naive_result.complete else "="
        print(f"mc: POR ratio on lapb2 tree: {bound} {ratio:.1f}x "
              f"({naive_result.states} naive vs {tree_result.states} "
              f"reduced states)")
        if not tree_result.complete:
            failures.append("POR tree walk of lapb2 hit its budget; "
                            "ratio is not meaningful")
        if ratio < 2.0:
            failures.append(
                f"POR ratio {ratio:.2f}x < 2x on lapb2")

    mutation_rows = []
    if not args.skip_mutation_gate:
        for mutation in MUTATIONS.values():
            with mutation.active():
                explorer = Explorer(
                    lambda m=mutation: build_world(m.world), por=True,
                    budget=budget(args.max_states))
                result = explorer.run()
                found = result.shortest_violation()
                replayed = False
                if found is not None:
                    confirmation = replay_violation(
                        lambda m=mutation: build_world(m.world), found)
                    replayed = confirmation.confirmed
                    if args.counterexamples:
                        print(found.render())
            row = {
                "mutation": mutation.name,
                "world": mutation.world,
                "expected_invariant": mutation.expected_invariant,
                "found_invariant": found.invariant if found else None,
                "counterexample_depth": found.depth if found else None,
                "replay_confirmed": replayed,
            }
            mutation_rows.append(row)
            if found is None:
                failures.append(
                    f"mutation {mutation.name}: no violation found "
                    f"({mutation.description})")
                print(f"mc: mutation {mutation.name}: MISSED")
                continue
            if found.invariant != mutation.expected_invariant:
                failures.append(
                    f"mutation {mutation.name}: expected "
                    f"{mutation.expected_invariant}, caught by "
                    f"{found.invariant}")
            if not replayed:
                failures.append(
                    f"mutation {mutation.name}: counterexample did not "
                    f"replay")
            print(f"mc: mutation {mutation.name}: caught by "
                  f"{found.invariant} in {found.depth} step(s), "
                  f"replay {'confirmed' if replayed else 'DIVERGED'}")

    document = {
        "spec": {
            "worlds": names,
            "max_states": args.max_states,
            "max_depth": args.max_depth,
            "max_wall_seconds": args.max_seconds,
            "naive_cap": args.naive_cap,
        },
        "presets": presets,
        "por_ratio": por_ratio,
        "mutation_gate": mutation_rows,
        "failures": failures,
    }
    out = args.out or bench_json_path("mc")
    path = write_bench_json(out, document, bench="mc")

    if failures:
        print("\nmc gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(f"wrote {path}")
        return 1
    print(f"\nmc gate passed: {len(names)} world(s) clean, "
          f"{len(mutation_rows)} mutation(s) caught; wrote {path}")
    return 0


def main(argv: list) -> int:
    """Dispatch to a scenario; returns a process exit code."""
    name = argv[1] if len(argv) > 1 else "list"
    if name == "sweep":
        return _sweep(argv[2:])
    if name == "chaos":
        return _chaos(argv[2:])
    if name == "tournament":
        return _tournament(argv[2:])
    if name == "report":
        return _report(argv[2:])
    if name == "scale":
        return _scale(argv[2:])
    if name == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[2:])
    if name == "mc":
        return _mc(argv[2:])
    if name in SCENARIOS:
        SCENARIOS[name]()
        return 0
    if name not in ("list", "-h", "--help"):
        print(f"unknown scenario {name!r}", file=sys.stderr)
    print(__doc__.strip())
    print("\nbuilt-in scenarios:", ", ".join(sorted(SCENARIOS)),
          "+ sweep, chaos, tournament, report, scale, lint, mc")
    print("richer versions live in examples/*.py")
    return 0 if name in ("list", "-h", "--help") else 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
