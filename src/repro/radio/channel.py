"""The shared radio channel.

Models one simplex frequency.  Every attached station that can "hear"
a transmitter senses carrier while it transmits; two transmissions
audible at the same receiver that overlap in time destroy each other
there (no capture effect).  A half-duplex station cannot receive while
its own transmitter is keyed.

Propagation is a boolean hearing relation.  By default the channel is
fully connected (everyone in simplex range); hidden-terminal and
digipeater topologies set explicit links, e.g. Seattle and Tacoma both
hear a mid-point digipeater but not each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.obs.spans import probe_ax25
from repro.sim.clock import MS
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer

#: How long a transmission must be on the air before other stations'
#: carrier-detect circuits register it.  1200-baud AFSK DCD was slow --
#: tens of milliseconds -- which is the "vulnerable window" that makes
#: collisions possible and p-persistent CSMA necessary.
DEFAULT_CARRIER_DETECT_DELAY = 20 * MS


@dataclass
class Transmission:
    """One frame in flight on the channel."""

    sender: "ChannelPort"
    payload: bytes
    start: int
    end: int
    #: Receivers at which this transmission has been destroyed by overlap.
    corrupted_at: Set[str] = field(default_factory=set)
    #: Flow-fidelity occupancy (see :meth:`RadioChannel.occupy`): sensed
    #: as carrier and able to corrupt overlapping real frames, but never
    #: delivered to any receiver itself.
    carrier_only: bool = False


class ChannelPort:
    """A station's attachment point to the channel.

    Created by :meth:`RadioChannel.attach`.  The owner supplies a frame
    delivery callback and (for bit errors) a name used to key the RNG
    stream.
    """

    def __init__(self, channel: "RadioChannel", name: str,
                 on_receive: Callable[[bytes], None]) -> None:
        self.channel = channel
        self.name = name
        self.on_receive = on_receive
        #: Relative received signal strength (topology-assigned); only
        #: consulted when the channel's capture effect is enabled.
        self.signal_strength = 1.0
        #: End time of this port's own current transmission (half duplex).
        self.tx_until = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_corrupted = 0

    # -- sensing -------------------------------------------------------

    def carrier_sensed(self) -> bool:
        """True if any audible station (or this one) is transmitting now."""
        return self.channel.carrier_sensed_at(self)

    @property
    def transmitting(self) -> bool:
        """True while this port's transmitter is keyed."""
        return self.tx_until > self.channel.sim.now

    # -- transmission ---------------------------------------------------

    def transmit(self, payload: bytes, airtime: int) -> Transmission:
        """Key up for ``airtime`` microseconds carrying ``payload``.

        The caller (CSMA layer) is responsible for deciding *when*; the
        channel just models the physics, including collisions if the
        caller transmits into a busy channel.
        """
        return self.channel.begin_transmission(self, payload, airtime)


class RadioChannel:
    """One simplex radio frequency shared by all attached stations."""

    def __init__(self, sim: Simulator, streams: Optional[RandomStreams] = None,
                 tracer: Optional[Tracer] = None, name: str = "145.01MHz",
                 carrier_detect_delay: int = DEFAULT_CARRIER_DETECT_DELAY,
                 capture_ratio: Optional[float] = None) -> None:
        self.sim = sim
        self.streams = streams or RandomStreams()
        self.tracer = tracer
        self.name = name
        self.carrier_detect_delay = carrier_detect_delay
        #: FM capture effect: when set (e.g. 4.0 for ~6 dB), a signal at
        #: least this factor stronger than an overlapping one survives at
        #: receivers that hear both.  None = any overlap destroys both.
        self.capture_ratio = capture_ratio
        self.ports: Dict[str, ChannelPort] = {}
        self.active: List[Transmission] = []
        #: None => fully connected; else a set of (hearer, speaker) pairs.
        self._links: Optional[Set[Tuple[str, str]]] = None
        #: Fault-injection state (installed by :mod:`repro.faults`).
        #: Receivers listed in ``fade_probability`` lose frames with that
        #: probability, drawn from the seeded ``fault/fade/<port>``
        #: stream; ``blocked_pairs`` (hearer, speaker) are deaf to each
        #: other regardless of the hearing relation (a partition).
        self.fade_probability: Dict[str, float] = {}
        self.blocked_pairs: Set[Tuple[str, str]] = set()
        #: Optional deterministic loss hook consulted before fade/BER:
        #: ``loss_gate(payload, port_name) -> bool`` returning False drops
        #: the frame.  reprocheck's worlds install a choice-oracle-driven
        #: gate here to make frame loss an explorable branch instead of a
        #: random draw.
        self.loss_gate: Optional[Callable[[bytes, str], bool]] = None
        self.frames_faded = 0
        self.total_transmissions = 0
        self.total_collisions = 0
        #: Accumulated channel-busy time (for utilisation measurement).
        self._busy_accumulated = 0
        self._busy_since: Optional[int] = None

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def attach(self, name: str, on_receive: Callable[[bytes], None]) -> ChannelPort:
        """Attach a station; ``name`` must be unique on the channel."""
        if name in self.ports:
            raise ValueError(f"station {name!r} already attached to {self.name}")
        port = ChannelPort(self, name, on_receive)
        self.ports[name] = port
        return port

    def use_explicit_links(self) -> None:
        """Switch from fully-connected to explicit hearing relation."""
        if self._links is None:
            self._links = set()

    def add_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Declare that station ``a`` hears station ``b`` (and vice versa)."""
        self.use_explicit_links()
        assert self._links is not None
        self._links.add((a, b))
        if bidirectional:
            self._links.add((b, a))

    def hears(self, hearer: ChannelPort, speaker: ChannelPort) -> bool:
        """Does ``hearer`` receive energy from ``speaker``?"""
        if hearer is speaker:
            return False
        if (hearer.name, speaker.name) in self.blocked_pairs:
            return False
        if self._links is None:
            return True
        return (hearer.name, speaker.name) in self._links

    # ------------------------------------------------------------------
    # carrier sense
    # ------------------------------------------------------------------

    def carrier_sensed_at(self, port: ChannelPort) -> bool:
        """Does this port detect any (detectable) carrier now?"""
        now = self.sim.now
        if port.tx_until > now:
            return True
        for tx in self.active:
            if (tx.end > now
                    and now >= tx.start + self.carrier_detect_delay
                    and self.hears(port, tx.sender)):
                return True
        return False

    # ------------------------------------------------------------------
    # transmission lifecycle
    # ------------------------------------------------------------------

    def occupy(self, sender: ChannelPort, airtime: int) -> Transmission:
        """Key up aggregate background energy (flow fidelity).

        A carrier-only transmission models the combined airtime of many
        analytically-simulated stations in one event: every hearer
        senses carrier for ``airtime`` microseconds and any overlapping
        real frame collides with it at shared receivers, but nothing is
        ever delivered for it -- the flow model accounts its own frames.
        """
        return self.begin_transmission(sender, b"", airtime,
                                       carrier_only=True)

    def begin_transmission(self, sender: ChannelPort, payload: bytes,
                           airtime: int,
                           carrier_only: bool = False) -> Transmission:
        """Key a transmitter: create the in-flight transmission."""
        now = self.sim.now
        tx = Transmission(sender=sender, payload=payload, start=now,
                          end=now + airtime, carrier_only=carrier_only)
        # Any already-active transmission audible alongside this one at a
        # common receiver collides with it there.
        for other in self.active:
            if other.end <= now:
                continue
            self._mark_mutual_collisions(tx, other)
        self.active.append(tx)
        sender.tx_until = max(sender.tx_until, tx.end)
        sender.frames_sent += 1
        self.total_transmissions += 1
        self._note_busy_start(now)
        if self.tracer is not None:
            self.tracer.log("radio.tx", sender.name, "keyed",
                            bytes=len(payload), airtime=airtime)
        recorder = self.tracer.flight if self.tracer is not None else None
        if recorder is not None:
            probe = probe_ax25(payload)
            if probe is not None:
                recorder.enter_key(probe[1], "radio.tx", sender.name)
        self.sim.at(tx.end, self._complete_transmission, tx,
                    label=f"radio-end {sender.name}")
        return tx

    def _mark_mutual_collisions(self, new: Transmission, old: Transmission) -> None:
        collided_somewhere = False
        for port in self.ports.values():
            hears_new = self.hears(port, new.sender)
            hears_old = self.hears(port, old.sender)
            if hears_new and hears_old:
                survivor = self._capture_survivor(new, old)
                if survivor is not new:
                    new.corrupted_at.add(port.name)
                if survivor is not old:
                    old.corrupted_at.add(port.name)
                collided_somewhere = True
        # Half-duplex: each sender cannot hear the other's frame at all;
        # mark the overlapping frame corrupted at the opposite sender so
        # it is not delivered there.
        new.corrupted_at.add(old.sender.name)
        old.corrupted_at.add(new.sender.name)
        if collided_somewhere:
            self.total_collisions += 1
            if self.tracer is not None:
                self.tracer.log("radio.collision", new.sender.name,
                                f"with {old.sender.name}")

    def _capture_survivor(self, new: Transmission,
                          old: Transmission) -> Optional[Transmission]:
        """Which overlapping transmission (if either) survives capture.

        With no capture ratio configured, or with signals too close in
        strength, both are destroyed -- the classic collision.  Capture
        additionally requires the survivor to have *started first*: an
        FM discriminator already locked to a strong signal ignores a
        weak latecomer, but a strong latecomer still ruins a weak
        frame's tail.
        """
        if self.capture_ratio is None:
            return None
        s_new = new.sender.signal_strength
        s_old = old.sender.signal_strength
        if s_old >= self.capture_ratio * s_new and old.start <= new.start:
            return old
        return None

    def _complete_transmission(self, tx: Transmission) -> None:
        self.active.remove(tx)
        self._note_busy_maybe_end()
        if tx.carrier_only:
            # Aggregate background energy: it occupied the channel and
            # corrupted what it overlapped, but there is no frame to
            # deliver -- the flow model accounts its own traffic.
            if self.tracer is not None:
                self.tracer.log("radio.done", tx.sender.name,
                                "flow burst unkeyed")
            return
        recorder = self.tracer.flight if self.tracer is not None else None
        probe = probe_ax25(tx.payload) if recorder is not None else None
        for port in self.ports.values():
            # Losses are span-relevant only at the addressed station:
            # everyone hears everything on the shared channel, but only
            # the intended receiver losing the frame loses the packet.
            watched = probe is not None and port.name == probe[0]
            if not self.hears(port, tx.sender):
                continue
            # Half-duplex receivers that were transmitting during any part
            # of this frame missed it.
            if port.tx_until > tx.start:
                if watched:
                    recorder.lost_key(probe[1], "radio.rx", port.name,
                                      "halfduplex_miss")
                continue
            if port.name in tx.corrupted_at:
                port.frames_corrupted += 1
                if watched:
                    recorder.lost_key(probe[1], "radio.rx", port.name,
                                      "collision")
                continue
            payload = self._maybe_corrupt(tx.payload, port)
            if payload is None:
                port.frames_corrupted += 1
                if watched:
                    recorder.lost_key(probe[1], "radio.rx", port.name,
                                      "fade")
                continue
            port.frames_received += 1
            if watched:
                recorder.enter_key(probe[1], "radio.rx", port.name)
            port.on_receive(payload)
        if self.tracer is not None:
            self.tracer.log("radio.done", tx.sender.name, "unkeyed",
                            corrupted_at=len(tx.corrupted_at))

    def _maybe_corrupt(self, payload: bytes, port: ChannelPort) -> Optional[bytes]:
        """Apply the receiver modem's bit-error model (channel-level BER)."""
        if self.loss_gate is not None and not self.loss_gate(payload, port.name):
            self.frames_faded += 1
            return None
        fade = self.fade_probability.get(port.name, 0.0)
        if fade > 0.0:
            rng = self.streams.stream(f"fault/fade/{port.name}")
            if rng.random() < fade:
                self.frames_faded += 1
                return None
        ber = getattr(port, "bit_error_rate", 0.0)
        if ber <= 0.0:
            return payload
        rng = self.streams.stream(f"ber/{port.name}")
        # P(frame survives) = (1 - ber) ** bits; sample once per frame.
        bits = len(payload) * 8
        survival = (1.0 - ber) ** bits
        if rng.random() < survival:
            return payload
        return None

    # ------------------------------------------------------------------
    # utilisation accounting
    # ------------------------------------------------------------------

    def _note_busy_start(self, now: int) -> None:
        if self._busy_since is None:
            self._busy_since = now

    def _note_busy_maybe_end(self) -> None:
        if self._busy_since is not None and not self.active:
            self._busy_accumulated += self.sim.now - self._busy_since
            self._busy_since = None

    def busy_time(self) -> int:
        """Total microseconds the channel has carried at least one signal."""
        total = self._busy_accumulated
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def utilisation(self, since: int = 0) -> float:
        """Fraction of elapsed time the channel was busy (from t=0)."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time() / elapsed)
