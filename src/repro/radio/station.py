"""A radio station: transceiver + p-persistent CSMA transmit queue.

This is the piece of "TNC firmware" that arbitrates channel access.
Frames handed to :meth:`RadioStation.send_frame` queue FIFO; the
station runs the p-persistence algorithm (sense, roll, key up) and
transmits each frame with the modem's TXDELAY keyup.  Received frames
are delivered to ``on_frame``.

Both the KISS TNC and the standalone digipeater are built on this.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.radio.channel import ChannelPort, RadioChannel
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.sim.engine import Event, Simulator


class RadioStation:
    """One transceiver on a shared channel with CSMA access control."""

    def __init__(
        self,
        sim: Simulator,
        channel: RadioChannel,
        name: str,
        modem: Optional[ModemProfile] = None,
        csma: Optional[CsmaParameters] = None,
        on_frame: Optional[Callable[[bytes], None]] = None,
        queue_limit: int = 64,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.name = name
        self.modem = modem or ModemProfile()
        self.csma = csma or CsmaParameters()
        self.on_frame = on_frame
        self.queue_limit = queue_limit
        self._queue: Deque[bytes] = deque()
        self._access_event: Optional[Event] = None
        self.port: ChannelPort = channel.attach(name, self._deliver)
        # Expose the modem's BER to the channel's corruption model.
        self.port.bit_error_rate = self.modem.bit_error_rate
        self.queue_drops = 0
        self.frames_queued = 0
        self._rng = channel.streams.stream(f"csma/{name}")

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def send_frame_object(self, frame) -> bool:
        """Encode and queue a structured frame (LAPB endpoints use this).

        A bound-method adapter so LAPB/NET-ROM owners can hand the
        endpoint ``station.send_frame_object`` directly instead of an
        encoding lambda (which would break snapshot isolation, SNAP001).
        """
        return self.send_frame(frame.encode())

    def send_frame(self, payload: bytes) -> bool:
        """Queue a frame for transmission; False if the queue is full."""
        if len(self._queue) >= self.queue_limit:
            self.queue_drops += 1
            return False
        self._queue.append(payload)
        self.frames_queued += 1
        self._schedule_access()
        return True

    @property
    def backlog(self) -> int:
        """Frames waiting (not counting one in flight)."""
        return len(self._queue)

    def _schedule_access(self) -> None:
        if self._access_event is not None or not self._queue:
            return
        self._access_event = self.sim.call_soon(
            self._try_channel, label=f"csma {self.name}"
        )

    def _try_channel(self) -> None:
        self._access_event = None
        if not self._queue:
            return
        if self.port.transmitting:
            # Our own transmitter is keyed; try again when it frees.
            self._retry_at(self.port.tx_until)
            return
        if not self.csma.full_duplex and self.port.carrier_sensed():
            # Busy: wait one slot and sense again.
            self._retry_after(self.csma.slot_time)
            return
        # Idle: p-persistence roll.
        if self._rng.random() <= self.csma.persistence:
            self._transmit_next()
        else:
            self._retry_after(self.csma.slot_time)

    def _retry_after(self, delay: int) -> None:
        self._access_event = self.sim.schedule(
            max(delay, 1), self._try_channel, label=f"csma {self.name}"
        )

    def _retry_at(self, when: int) -> None:
        self._access_event = self.sim.at(
            max(when, self.sim.now + 1), self._try_channel, label=f"csma {self.name}"
        )

    def _transmit_next(self) -> None:
        payload = self._queue.popleft()
        airtime = self.modem.frame_airtime(len(payload))
        self.port.transmit(payload, airtime)
        if self._queue:
            # Next access attempt when this transmission completes.
            self._retry_at(self.port.tx_until)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _deliver(self, payload: bytes) -> None:
        if self.on_frame is not None:
            self.on_frame(payload)
