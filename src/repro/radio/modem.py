"""Modem timing model (Bell-202-style AFSK at 1200 bps by default).

"Because the link speed is only 1200 bits per second, the transmission
time is the dominant factor in determining throughput and latency."
The modem profile is where that 1200 enters the model, together with
the transmitter keyup delay (TXDELAY) and hold time (TXTAIL) that KISS
lets the host tune.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import MS, SECOND


@dataclass(frozen=True)
class ModemProfile:
    """Physical-layer timing parameters for one station's modem.

    ``txdelay``/``txtail`` default to the customary TNC values (30 and
    5 in 10 ms KISS units).  ``bit_error_rate`` is per-bit; 0 disables
    corruption.
    """

    bit_rate: int = 1200
    txdelay: int = 300 * MS
    txtail: int = 50 * MS
    bit_error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if self.txdelay < 0 or self.txtail < 0:
            raise ValueError("txdelay/txtail must be non-negative")
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")

    def data_airtime(self, num_bytes: int) -> int:
        """Microseconds to clock ``num_bytes`` of payload onto the air."""
        return round(num_bytes * 8 * SECOND / self.bit_rate)

    def frame_airtime(self, num_bytes: int) -> int:
        """Total channel occupancy for one frame: keyup + data + tail."""
        return self.txdelay + self.data_airtime(num_bytes) + self.txtail

    def with_kiss_txdelay(self, units: int) -> "ModemProfile":
        """Apply a KISS TXDELAY command (units of 10 ms)."""
        return replace(self, txdelay=units * 10 * MS)

    def with_kiss_txtail(self, units: int) -> "ModemProfile":
        """Apply a KISS TXTAIL command (units of 10 ms)."""
        return replace(self, txtail=units * 10 * MS)
