"""p-persistent CSMA parameters.

The KISS TNC uses p-persistence for channel access: when the channel
goes idle the TNC rolls a die each slot; with probability ``p`` it
keys the transmitter, otherwise it waits one slot time and senses
again.  PERSIST and SLOTTIME are host-settable KISS commands.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import MS


@dataclass(frozen=True)
class CsmaParameters:
    """Channel-access parameters (KISS PERSIST/SLOTTIME semantics)."""

    #: Probability of transmitting in an idle slot, 0 < p <= 1.
    persistence: float = 0.25
    #: Slot duration between persistence trials.
    slot_time: int = 100 * MS
    #: Full duplex disables carrier sense entirely (KISS FULLDUP).
    full_duplex: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.persistence <= 1.0:
            raise ValueError("persistence must be in (0, 1]")
        if self.slot_time < 0:
            raise ValueError("slot_time must be non-negative")

    @classmethod
    def from_kiss(cls, persist_byte: int, slottime_units: int,
                  full_duplex: bool = False) -> "CsmaParameters":
        """Build from raw KISS parameter bytes.

        KISS defines P = (PERSIST + 1) / 256 and SLOTTIME in 10 ms units.
        """
        if not 0 <= persist_byte <= 255:
            raise ValueError("PERSIST byte out of range")
        return cls(
            persistence=(persist_byte + 1) / 256,
            slot_time=slottime_units * 10 * MS,
            full_duplex=full_duplex,
        )

    def with_persist_byte(self, persist_byte: int) -> "CsmaParameters":
        """Copy with PERSIST set from the raw KISS byte."""
        return replace(self, persistence=(persist_byte + 1) / 256)

    def with_slottime_units(self, units: int) -> "CsmaParameters":
        """Copy with SLOTTIME set from 10 ms units."""
        return replace(self, slot_time=units * 10 * MS)

    def with_full_duplex(self, enabled: bool) -> "CsmaParameters":
        """Copy with full-duplex set."""
        return replace(self, full_duplex=enabled)
