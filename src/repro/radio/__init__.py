"""Radio substrate: the shared 1200 bps half-duplex channel.

"The radio corresponds to an Ethernet transceiver" -- but unlike
Ethernet the amateur 2-metre channel is slow (1200 bps), half duplex,
and every station on the frequency hears (and contends with) every
other station it is in range of.  Digipeaters relay on the *same*
frequency, halving capacity per hop.

* :class:`~repro.radio.channel.RadioChannel` -- the shared medium with
  carrier sense, collisions and a configurable propagation map.
* :class:`~repro.radio.modem.ModemProfile` -- bit rate, TXDELAY keyup,
  TXTAIL, optional bit-error rate.
* :class:`~repro.radio.csma.CsmaParameters` / p-persistent access.
* :class:`~repro.radio.station.RadioStation` -- a transceiver endpoint
  with a transmit queue, used by TNCs and digipeaters.
"""

from repro.radio.channel import RadioChannel, Transmission
from repro.radio.csma import CsmaParameters
from repro.radio.modem import ModemProfile
from repro.radio.station import RadioStation

__all__ = [
    "CsmaParameters",
    "ModemProfile",
    "RadioChannel",
    "RadioStation",
    "Transmission",
]
