#!/usr/bin/env python
"""The §2.3 demonstration: telnet, FTP and mail through the gateway.

Recreates the moment the paper describes -- "we were able to telnet
from an isolated IBM PC to a system that was on our Ethernet by way of
the new gateway" -- then exercises file transfer and electronic mail in
both directions, printing the session transcripts.

Run:  python examples/gateway_session.py
"""

from repro.apps.ftp import FileStore, FtpClient, FtpServer
from repro.apps.smtp import SmtpClient, SmtpServer
from repro.apps.telnet import TelnetClient, TelnetServer
from repro.core.topology import build_gateway_testbed
from repro.sim.clock import SECOND


def banner(text: str) -> None:
    print()
    print("=" * 64)
    print(text)
    print("=" * 64)


def main() -> None:
    testbed = build_gateway_testbed(seed=42)
    print("Topology (the paper's §2.3 testbed):")
    print(f"  gateway  : {testbed.gateway.stack.hostname} "
          f"(qe0 {testbed.GATEWAY_ETHER_IP}, pr0 {testbed.GATEWAY_RADIO_IP} "
          f"as {testbed.gateway.radio_interface.callsign})")
    print(f"  ether    : wally ({testbed.ETHER_HOST_IP})")
    print(f"  radio PC : ibmpc ({testbed.PC_IP} as {testbed.pc.callsign}) -- "
          "'connected to only a power outlet and a radio'")

    # ------------------------------------------------------------------
    banner("telnet: isolated PC -> wally, through the gateway")
    TelnetServer(testbed.ether_host)
    telnet = TelnetClient(testbed.pc.stack, testbed.ETHER_HOST_IP)
    telnet.type_lines([
        "cliff",
        "echo hello from the packet radio network",
        "date",
        "who",
        "logout",
    ])
    testbed.sim.run(until=900 * SECOND)
    print(telnet.transcript_text())

    # ------------------------------------------------------------------
    banner("ftp: download and upload across the gateway")
    store = FileStore({"README": b"Welcome to wally.\n" * 8})
    FtpServer(testbed.ether_host, store)
    ftp = FtpClient(testbed.pc.stack, testbed.ETHER_HOST_IP)
    ftp.get("README")
    ftp.put("fieldnotes.txt", b"packet radio field notes, day 1\n")
    ftp.quit()
    testbed.sim.run(until=testbed.sim.now + 1800 * SECOND)
    for line in ftp.log:
        print(f"  ftp< {line}")
    print(f"  downloaded README: {len(ftp.retrieved.get('README', b''))} bytes")
    print(f"  uploaded fieldnotes.txt: "
          f"{len(store.get('fieldnotes.txt') or b'')} bytes now on wally")

    # ------------------------------------------------------------------
    banner("mail: both directions")
    ether_mail = SmtpServer(testbed.ether_host)
    radio_mail = SmtpServer(testbed.pc.stack)
    SmtpClient(testbed.pc.stack, testbed.ETHER_HOST_IP, "kb7dz@ibmpc",
               ["cliff@wally"], "The gateway works. 73 de KB7DZ")
    testbed.sim.run(until=testbed.sim.now + 600 * SECOND)
    SmtpClient(testbed.ether_host, testbed.PC_IP, "cliff@wally",
               ["kb7dz@ibmpc"], "Received loud and clear.")
    testbed.sim.run(until=testbed.sim.now + 600 * SECOND)
    for mailbox, owner in ((ether_mail.mailbox, "cliff"),
                           (radio_mail.mailbox, "kb7dz")):
        for message in mailbox.inbox(owner):
            print(f"  {owner}'s inbox: from {message.sender}: {message.body!r}")

    # ------------------------------------------------------------------
    banner("gateway accounting")
    counters = testbed.gateway.stack.counters
    print(f"  datagrams forwarded : {counters['ip_forwarded']}")
    print(f"  fragments created   : {counters['frags_sent']}")
    print(f"  radio channel busy  : {100 * testbed.channel.utilisation():.1f}% "
          "of elapsed time")
    print(f"  driver interrupts   : "
          f"{testbed.gateway.radio_interface.rx_char_interrupts} characters")


if __name__ == "__main__":
    main()
