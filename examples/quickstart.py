#!/usr/bin/env python
"""Quickstart: build Figure 1 and ping across the radio channel.

This is the smallest complete use of the library: two IP-speaking
stations on a shared 1200 bps channel (each one a Host--DZ--RS-232--
KISS-TNC--Radio chain, exactly Figure 1 of the paper), dynamic AX.25
ARP, and an ICMP echo with the trace printed.

Run:  python examples/quickstart.py
"""

from repro.apps.ping import Pinger
from repro.core.topology import build_figure1_testbed
from repro.sim.clock import SECOND


def main() -> None:
    testbed = build_figure1_testbed(seed=7, bit_rate=1200)

    print("Figure 1 testbed:")
    print(f"  host {testbed.host.stack.hostname} = {testbed.host.callsign} "
          f"at {testbed.host.interface.address}")
    print(f"  peer {testbed.peer.stack.hostname} = {testbed.peer.callsign} "
          f"at {testbed.peer.interface.address}")
    print(f"  channel {testbed.channel.name} at "
          f"{testbed.host.radio.tnc.station.modem.bit_rate} bps")
    print()

    pinger = Pinger(testbed.host.stack)
    pinger.send("44.24.0.5", count=3, interval=20 * SECOND)
    testbed.sim.run(until=120 * SECOND)

    print("Radio-level trace:")
    for record in testbed.tracer.select(category="radio.tx"):
        print(" ", record.render())
    print()
    print("Driver-level trace:")
    for record in testbed.tracer.select(category="driver"):
        print(" ", record.render())
    print()

    print(f"ping 44.24.0.5: {pinger.received}/{pinger.sent} replies")
    for index, rtt in enumerate(pinger.rtts_us):
        print(f"  seq={index} rtt={rtt / SECOND:.2f}s")
    mean = pinger.mean_rtt_seconds()
    print(f"  mean RTT {mean:.2f}s -- at 1200 bps, transmission time "
          "dominates (the paper's §3)")
    assert pinger.received == 3


if __name__ == "__main__":
    main()
