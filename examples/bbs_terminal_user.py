#!/usr/bin/env python
"""The pre-IP world and its bridge to the Internet.

Recreates the introduction of the paper: a user with a dumb terminal
and a stock ROM TNC connects to a local BBS, leaves mail, and reads
messages -- no IP anywhere on their side.  Then the §2.4 application
gateway lets the same terminal user log into an Internet host and send
SMTP mail, "without isolating themselves from the existing amateur
packet radio network".

Run:  python examples/bbs_terminal_user.py
"""

from repro.apps.axgateway import Ax25ApplicationGateway
from repro.apps.bbs import BulletinBoard
from repro.apps.smtp import SmtpServer
from repro.apps.telnet import TelnetServer
from repro.core.hosts import TerminalStation
from repro.core.topology import build_gateway_testbed
from repro.sim.clock import SECOND


def banner(text: str) -> None:
    print()
    print("=" * 64)
    print(text)
    print("=" * 64)


def main() -> None:
    testbed = build_gateway_testbed(seed=1988)
    sim = testbed.sim

    # A BBS and a terminal user share the frequency with the gateway.
    bbs = BulletinBoard(sim, testbed.channel, "W0RLI")
    user = TerminalStation(sim, testbed.channel, "KD7NM")

    # Internet services behind the gateway.
    TelnetServer(testbed.ether_host)
    mail = SmtpServer(testbed.ether_host)
    Ax25ApplicationGateway(testbed.gateway.stack,
                           testbed.gateway.radio_interface,
                           mail_relay=testbed.ETHER_HOST_IP)

    # ------------------------------------------------------------------
    banner("act 1: terminal user on the BBS (AX.25 connected mode only)")
    script = [
        (1, "connect W0RLI"),
        (40, "S N7AKR"),
        (70, "Cliff -- the new gateway is on the air tonight."),
        (95, "/EX"),
        (150, "L"),
        (210, "R 1"),
        (330, "B"),
    ]
    for t, line in script:
        sim.at(t * SECOND, user.type_line, line)
    sim.run(until=450 * SECOND)
    print(user.screen_text())
    user.screen.clear()

    # ------------------------------------------------------------------
    banner("act 2: the same terminal, onto the Internet via the gateway")
    script = [
        (10, "connect NT7GW"),
        (60, "T " + testbed.ETHER_HOST_IP),
        (170, "kd7nm"),
        (300, "echo a terminal user on the Internet"),
        (450, "logout"),
        (560, "M kd7nm@gateway cliff@wally"),
        (600, "No TCP/IP here, just a TNC -- and it still reached you."),
        (630, "/EX"),
        (800, "B"),
    ]
    for t, line in script:
        sim.at(sim.now + t * SECOND, user.type_line, line)
    sim.run(until=sim.now + 1100 * SECOND)
    print(user.screen_text())

    # ------------------------------------------------------------------
    banner("state of the world")
    print(f"  BBS message base: {len(bbs.messages)} message(s)")
    for message in bbs.messages:
        print(f"    #{message.number} to {message.to} fm {message.origin}: "
              f"{message.body!r}")
    inbox = mail.mailbox.inbox("cliff")
    print(f"  cliff@wally inbox: {len(inbox)} message(s)")
    for message in inbox:
        print(f"    from {message.sender}: {message.body!r}")


if __name__ == "__main__":
    main()
