#!/usr/bin/env python
"""Load soak: 50 stations of bursty traffic against the §2.3 gateway.

A population-scale workload on the gateway testbed: three quarters of
the stations are legacy AX.25 users chattering in Markov-modulated
on/off bursts (none of it addressed to the gateway), the rest are IP
stations pinging the wired host through it with heavy-tailed Pareto
interarrivals -- the worst case §3 describes for the promiscuous TNC's
serial line.

The sweep runs the same soak under promiscuous and filtering TNC
firmware, a few seeds each, fanned across worker processes by the
experiment harness, and prints mean ± 95% CI for the headline metrics.

Run:  python examples/load_soak.py        (takes ~15 s of wall clock)
"""

import time

from repro.harness import SweepSpec, run_sweep

STATIONS = 50
DURATION_S = 180.0
SEEDS = (1, 2, 3)
#: The preset rates are sized for ~20 stations; at 50 stations this
#: scale keeps the 1200 bps channel around 0.7 erlangs -- degraded (the
#: paper's §3 regime) but still on the air.
RATE_SCALE = 0.12
GRID = (
    {"stations": STATIONS, "duration_seconds": DURATION_S, "mix": "bursty",
     "rate_scale": RATE_SCALE, "address_filter": False},
    {"stations": STATIONS, "duration_seconds": DURATION_S, "mix": "bursty",
     "rate_scale": RATE_SCALE, "address_filter": True},
)

HEADLINE = (
    "frames_offered",
    "pings_sent",
    "pings_received",
    "ping_mean_rtt_s",
    "channel_utilisation",
    "channel_collisions",
    "gateway_ip_forwarded",
    "gateway_serial_bytes_to_host",
    "gateway_driver_discards",
)


def main() -> None:
    print(f"Soak: {STATIONS} stations, bursty mix, "
          f"{DURATION_S:.0f} simulated seconds, seeds {list(SEEDS)}")
    started = time.perf_counter()
    result = run_sweep(SweepSpec(bench="soak", seeds=SEEDS,
                                 grid=GRID, procs=4))
    wall = time.perf_counter() - started

    for key, params in result.grid_points():
        mode = "filtered" if params["address_filter"] else "promiscuous"
        print(f"\nTNC {mode}:")
        stats = result.aggregates[key]
        for name in HEADLINE:
            if name in stats:
                print(f"  {name:29s} {stats[name].render()}")

    print(f"\n{len(result.records)} runs in {wall:.1f} s wall clock "
          f"across {result.workers_used} worker process(es) -- "
          f"{sum(r.metrics['events_executed'] for r in result.records):,.0f} "
          f"simulated events")


if __name__ == "__main__":
    main()
