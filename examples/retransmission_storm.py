#!/usr/bin/env python
"""§4.1 side by side: a fixed-timeout storm vs adaptive recovery.

The paper's observation: Ethernet-side TCPs arrive with timeout values
tuned for millisecond LANs; against a 1200 bps radio path they
"initially retransmit packets several times before a response makes it
back", and the duplicates queue at the gateway and delay everyone else.
Implementations that adapt their timeout learn the radio RTT and stop.

This demo runs the exact same hostile-link scenario twice -- gateway
topology, TCP transfers through the gateway, a mid-run receiver fade at
the hub (the tournament's ``storm`` plan) -- changing nothing but the
recovery policies:

* ``FixedRto`` + ``NoCongestion``: the storm baseline,
* ``AdaptiveRto`` (Jacobson/Karn) + ``Reno``: adaptive recovery.

Run:  python examples/retransmission_storm.py
"""

from repro.harness.experiments import run_tournament

DURATION_S = 180.0


def run(label: str, rto: str, cc: str) -> dict:
    metrics = run_tournament(seed=1, rto=rto, cc=cc, link_timer="fixed",
                             plan="storm", bit_rate=1200,
                             duration_seconds=DURATION_S)
    print(f"{label}:")
    print(f"  goodput          {metrics['goodput_bytes_per_s']:8.2f} B/s")
    print(f"  retransmissions  {metrics.get('tcp_retransmissions', 0):8.0f}")
    print(f"  timeouts         {metrics.get('tcp_timeouts', 0):8.0f}")
    print(f"  spans conserved  {'yes' if metrics['obs_conservation_ok'] else 'NO'}")
    print()
    return metrics


def main() -> None:
    print(f"storm plan, 1200 bps, {DURATION_S:.0f} simulated seconds, seed 1")
    print()
    fixed = run("FixedRto + NoCongestion (the §4.1 storm)", "fixed", "none")
    adaptive = run("AdaptiveRto + Reno (adaptive recovery)", "adaptive", "reno")

    ratio = fixed.get("tcp_retransmissions", 0) / max(
        1.0, adaptive.get("tcp_retransmissions", 0))
    print(f"the fixed-timeout sender retransmitted {ratio:.1f}x as often "
          "for strictly less delivered data --")
    print("exactly the paper's \"wasted bandwidth ... delay other packets\".")
    assert adaptive["goodput_bytes_per_s"] > fixed["goodput_bytes_per_s"]
    assert fixed.get("tcp_retransmissions", 0) > adaptive.get(
        "tcp_retransmissions", 0)


if __name__ == "__main__":
    main()
