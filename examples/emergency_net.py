#!/usr/bin/env python
"""An emergency field network (the paper's §5 motivation).

"Packet radio is also useful for emergency field communications where
one doesn't have the time to string wires.  Another reason ... is that
in a large scale emergency, such as an earthquake, land based
communications will often be disrupted."

Scenario: an earthquake exercise around Puget Sound.  Field stations in
Tacoma and Everett can only reach the Seattle EOC through a hilltop
digipeater (hidden-terminal topology); the EOC's MicroVAX gateways
traffic onto the surviving campus Ethernet where a message hub runs.
Field stations report in over UDP and the hub acknowledges.

Then the real emergency arrives: thousands of hams converge on the
frequency.  The surge is modelled at *flow fidelity* -- a
:class:`~repro.scale.flow.FlowStationCloud` stands in for the crowd,
occupying real airtime on the shared channel without simulating each
joiner's TNC -- and the priority reports must still get through the
now-congested channel.

Run:  python examples/emergency_net.py
"""

from repro.apps.ping import Pinger
from repro.ax25.address import AX25Path
from repro.core.hosts import make_ethernet_host, make_gateway, make_radio_host
from repro.ethernet.lan import EthernetLan
from repro.inet.sockets import UdpSocket
from repro.radio.channel import RadioChannel
from repro.radio.modem import ModemProfile
from repro.scale.flow import FlowStationCloud
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer
from repro.tnc.digipeater import Digipeater

REPORT_PORT = 3694  # "EOC" on a phone pad


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=2026)
    tracer = Tracer(sim)
    modem = ModemProfile(bit_rate=1200)

    # -- the radio side: hidden-terminal topology via a hilltop digi ----
    channel = RadioChannel(sim, streams, tracer=tracer, name="146.58-simplex")
    lan = EthernetLan(sim, tracer=tracer)

    eoc_gateway = make_gateway(
        sim, lan, channel, "eoc-vax", "W7EOC",
        ether_ip="128.95.10.1", radio_ip="44.24.10.1", mac_index=1,
        tracer=tracer, modem=modem,
    )
    hub = make_ethernet_host(sim, lan, "msg-hub", "128.95.10.2", mac_index=2,
                             tracer=tracer)
    hub.routes.add_network_route("44.0.0.0", hub.interfaces[-1],
                                 gateway="128.95.10.1")

    hilltop = Digipeater(sim, channel, "WR7HIL", modem=modem, tracer=tracer)

    tacoma = make_radio_host(sim, channel, "tacoma-field", "KB7DZ",
                             "44.24.10.20", tracer=tracer, modem=modem)
    everett = make_radio_host(sim, channel, "everett-field", "N7AKR",
                              "44.24.10.30", tracer=tracer, modem=modem)

    # Propagation: field stations hear only the hilltop; the EOC hears
    # the hilltop and (being in town) Tacoma directly.
    channel.use_explicit_links()
    channel.add_link("KB7DZ", "WR7HIL")
    channel.add_link("N7AKR", "WR7HIL")
    channel.add_link("W7EOC", "WR7HIL")
    channel.add_link("W7EOC", "KB7DZ")

    # Routing & link paths: Everett must digipeat via the hilltop.
    for station in (tacoma, everett):
        station.stack.routes.set_default(station.interface, "44.24.10.1")
    everett.interface.add_arp_entry("44.24.10.1", "W7EOC",
                                    AX25Path.of("WR7HIL"))
    eoc_gateway.radio.interface.add_arp_entry("44.24.10.30", "N7AKR",
                                              AX25Path.of("WR7HIL"))
    tacoma.interface.add_arp_entry("44.24.10.1", "W7EOC")
    eoc_gateway.radio.interface.add_arp_entry("44.24.10.20", "KB7DZ")

    # -- the message hub: UDP check-in service ------------------------
    checkins = []
    hub_socket = UdpSocket(hub, REPORT_PORT)

    def on_report(payload, source, source_port):
        text = payload.decode("latin-1")
        checkins.append((sim.now, str(source), text))
        hub_socket.sendto(f"ACK {len(checkins)}: {text}".encode(),
                          source, source_port)
    hub_socket.on_datagram = on_report

    acks = {"tacoma": [], "everett": []}
    tacoma_socket = UdpSocket(tacoma.stack)
    everett_socket = UdpSocket(everett.stack)
    tacoma_socket.on_datagram = lambda p, s, sp: acks["tacoma"].append(p)
    everett_socket.on_datagram = lambda p, s, sp: acks["everett"].append(p)

    reports = [
        (20, tacoma_socket, "TACOMA: shelter open, 120 capacity"),
        (45, everett_socket, "EVERETT: bridge out on highway 2"),
        (110, tacoma_socket, "TACOMA: medical supplies requested"),
        (150, everett_socket, "EVERETT: comms normal, generator at 80%"),
    ]
    for t, socket, text in reports:
        sim.schedule(t * SECOND, socket.sendto, text.encode("latin-1"),
                     "128.95.10.2", REPORT_PORT)

    sim.run(until=600 * SECOND)

    print("Emergency net exercise -- field reports received at the hub:")
    for when, source, text in checkins:
        print(f"  [{when / SECOND:7.1f}s] {source:<14} {text}")
    print()
    print(f"acks at Tacoma : {len(acks['tacoma'])}")
    print(f"acks at Everett: {len(acks['everett'])} (digipeated via WR7HIL)")
    print(f"hilltop digipeater relayed {hilltop.frames_relayed} frames")
    print(f"gateway forwarded {eoc_gateway.stack.counters['ip_forwarded']} "
          "datagrams radio<->ether")
    print(f"channel busy {100 * channel.utilisation():.1f}% of the exercise")

    assert len(checkins) == 4
    assert len(acks["tacoma"]) == 2 and len(acks["everett"]) == 2
    assert hilltop.frames_relayed > 0
    print("\nexercise complete: all stations checked in and were acknowledged")

    # -- the surge: thousands of joiners converge on the frequency ----
    # Flow fidelity stands in for the crowd: one carrier-only burst per
    # epoch carries their aggregate airtime, so the channel congests the
    # way a real pile-up congests it without 2,500 simulated TNCs.
    surge = FlowStationCloud(sim, channel, streams, name="SURGE",
                             stations=2500, rate_per_minute=0.4,
                             frame_bytes=96, modem=modem,
                             duration=500 * SECOND)
    # The channel uses explicit propagation links, so the crowd must be
    # made audible: everyone on the hill or in town hears the pile-up.
    for callsign in ("W7EOC", "KB7DZ", "N7AKR", "WR7HIL"):
        channel.add_link(callsign, "FLOW/SURGE")
    surge.start()

    # Emergency procedure on a congested channel: repeat priority
    # traffic until the hub's acknowledgement makes it back.
    def send_until_acked(socket, station, text, attempts=6):
        baseline = len(acks[station])
        socket.sendto(text.encode("latin-1"), "128.95.10.2", REPORT_PORT)

        def check():
            if len(acks[station]) == baseline and attempts > 1:
                send_until_acked(socket, station, text, attempts - 1)
        sim.schedule(45 * SECOND, check)

    priority = [
        (700, tacoma_socket, "tacoma",
         "TACOMA PRIORITY: aftershock, shelter full"),
        (820, everett_socket, "everett",
         "EVERETT PRIORITY: medevac staged at field"),
    ]
    for t, socket, station, text in priority:
        sim.schedule((t - 600) * SECOND, send_until_acked,
                     socket, station, text)

    busy_before = channel.busy_time()
    sim.run(until=1200 * SECOND)

    stats = surge.metrics()
    surge_busy = channel.busy_time() - busy_before
    print(f"\nsurge: {surge.stations} flow-level joiners for "
          f"{stats['flow_epochs']:.0f} epochs")
    print(f"  frames offered {stats['flow_offered']:.0f}, served "
          f"{stats['flow_served']:.0f}, deferred {stats['flow_deferred']:.0f}, "
          f"dropped {stats['flow_dropped']:.0f}")
    print(f"  channel busy {100 * surge_busy / (600 * SECOND):.1f}% "
          "of the surge hour")
    print("priority reports through the pile-up:")
    for when, source, text in checkins[4:]:
        print(f"  [{when / SECOND:7.1f}s] {source:<14} {text}")

    assert stats["flow_served"] > 0 and stats["flow_offered"] > 0
    delivered = {text for _, _, text in checkins[4:]}
    assert all(text in delivered for _, _, _, text in priority), \
        "priority reports lost in the surge"
    assert len(acks["tacoma"]) >= 3 and len(acks["everett"]) >= 3, \
        "priority acknowledgements never made it back"
    print("\nsurge survived: priority traffic acknowledged under load")


if __name__ == "__main__":
    main()
