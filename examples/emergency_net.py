#!/usr/bin/env python
"""An emergency field network (the paper's §5 motivation).

"Packet radio is also useful for emergency field communications where
one doesn't have the time to string wires.  Another reason ... is that
in a large scale emergency, such as an earthquake, land based
communications will often be disrupted."

Scenario: an earthquake exercise around Puget Sound.  Field stations in
Tacoma and Everett can only reach the Seattle EOC through a hilltop
digipeater (hidden-terminal topology); the EOC's MicroVAX gateways
traffic onto the surviving campus Ethernet where a message hub runs.
Field stations report in over UDP, the hub acknowledges, and a NET/ROM
node provides a backup long-haul path.

Run:  python examples/emergency_net.py
"""

from repro.apps.ping import Pinger
from repro.ax25.address import AX25Path
from repro.core.hosts import make_ethernet_host, make_gateway, make_radio_host
from repro.ethernet.lan import EthernetLan
from repro.inet.sockets import UdpSocket
from repro.radio.channel import RadioChannel
from repro.radio.modem import ModemProfile
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer
from repro.tnc.digipeater import Digipeater

REPORT_PORT = 3694  # "EOC" on a phone pad


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=2026)
    tracer = Tracer(sim)
    modem = ModemProfile(bit_rate=1200)

    # -- the radio side: hidden-terminal topology via a hilltop digi ----
    channel = RadioChannel(sim, streams, tracer=tracer, name="146.58-simplex")
    lan = EthernetLan(sim, tracer=tracer)

    eoc_gateway = make_gateway(
        sim, lan, channel, "eoc-vax", "W7EOC",
        ether_ip="128.95.10.1", radio_ip="44.24.10.1", mac_index=1,
        tracer=tracer, modem=modem,
    )
    hub = make_ethernet_host(sim, lan, "msg-hub", "128.95.10.2", mac_index=2,
                             tracer=tracer)
    hub.routes.add_network_route("44.0.0.0", hub.interfaces[-1],
                                 gateway="128.95.10.1")

    hilltop = Digipeater(sim, channel, "WR7HIL", modem=modem, tracer=tracer)

    tacoma = make_radio_host(sim, channel, "tacoma-field", "KB7DZ",
                             "44.24.10.20", tracer=tracer, modem=modem)
    everett = make_radio_host(sim, channel, "everett-field", "N7AKR",
                              "44.24.10.30", tracer=tracer, modem=modem)

    # Propagation: field stations hear only the hilltop; the EOC hears
    # the hilltop and (being in town) Tacoma directly.
    channel.use_explicit_links()
    channel.add_link("KB7DZ", "WR7HIL")
    channel.add_link("N7AKR", "WR7HIL")
    channel.add_link("W7EOC", "WR7HIL")
    channel.add_link("W7EOC", "KB7DZ")

    # Routing & link paths: Everett must digipeat via the hilltop.
    for station in (tacoma, everett):
        station.stack.routes.set_default(station.interface, "44.24.10.1")
    everett.interface.add_arp_entry("44.24.10.1", "W7EOC",
                                    AX25Path.of("WR7HIL"))
    eoc_gateway.radio.interface.add_arp_entry("44.24.10.30", "N7AKR",
                                              AX25Path.of("WR7HIL"))
    tacoma.interface.add_arp_entry("44.24.10.1", "W7EOC")
    eoc_gateway.radio.interface.add_arp_entry("44.24.10.20", "KB7DZ")

    # -- the message hub: UDP check-in service ------------------------
    checkins = []
    hub_socket = UdpSocket(hub, REPORT_PORT)

    def on_report(payload, source, source_port):
        text = payload.decode("latin-1")
        checkins.append((sim.now, str(source), text))
        hub_socket.sendto(f"ACK {len(checkins)}: {text}".encode(),
                          source, source_port)
    hub_socket.on_datagram = on_report

    acks = {"tacoma": [], "everett": []}
    tacoma_socket = UdpSocket(tacoma.stack)
    everett_socket = UdpSocket(everett.stack)
    tacoma_socket.on_datagram = lambda p, s, sp: acks["tacoma"].append(p)
    everett_socket.on_datagram = lambda p, s, sp: acks["everett"].append(p)

    reports = [
        (20, tacoma_socket, "TACOMA: shelter open, 120 capacity"),
        (45, everett_socket, "EVERETT: bridge out on highway 2"),
        (110, tacoma_socket, "TACOMA: medical supplies requested"),
        (150, everett_socket, "EVERETT: comms normal, generator at 80%"),
    ]
    for t, socket, text in reports:
        sim.schedule(t * SECOND, socket.sendto, text.encode("latin-1"),
                     "128.95.10.2", REPORT_PORT)

    sim.run(until=600 * SECOND)

    print("Emergency net exercise -- field reports received at the hub:")
    for when, source, text in checkins:
        print(f"  [{when / SECOND:7.1f}s] {source:<14} {text}")
    print()
    print(f"acks at Tacoma : {len(acks['tacoma'])}")
    print(f"acks at Everett: {len(acks['everett'])} (digipeated via WR7HIL)")
    print(f"hilltop digipeater relayed {hilltop.frames_relayed} frames")
    print(f"gateway forwarded {eoc_gateway.stack.counters['ip_forwarded']} "
          "datagrams radio<->ether")
    print(f"channel busy {100 * channel.utilisation():.1f}% of the exercise")

    assert len(checkins) == 4
    assert len(acks["tacoma"]) == 2 and len(acks["everett"]) == 2
    assert hilltop.frames_relayed > 0
    print("\nexercise complete: all stations checked in and were acknowledged")


if __name__ == "__main__":
    main()
