#!/usr/bin/env python
"""The sysadmin's view: axdump and netstat on a live gateway.

Runs the §2.3 testbed with a monitor receiver on the frequency (the
software version of a spare TNC in monitor mode) while a telnet session
crosses the gateway, then prints what the era's commands would show:
the decoded off-air trace, ifconfig, netstat -r, arp -a, and protocol
statistics for every host.

Run:  python examples/network_observatory.py
"""

from repro.apps.telnet import TelnetClient, TelnetServer
from repro.core.topology import build_gateway_testbed
from repro.sim.clock import SECOND
from repro.tools.axdump import ChannelMonitor
from repro.tools.netstat import (
    format_arp_table,
    format_interfaces,
    format_netstat,
    format_routes,
)


def heading(text: str) -> None:
    print()
    print(f"==== {text} " + "=" * max(0, 58 - len(text)))


def main() -> None:
    testbed = build_gateway_testbed(seed=88)
    monitor = ChannelMonitor(testbed.channel)

    TelnetServer(testbed.ether_host)
    client = TelnetClient(testbed.pc.stack, testbed.ETHER_HOST_IP)
    client.type_lines(["cliff", "echo watching the watchers", "logout"])
    testbed.sim.run(until=900 * SECOND)
    assert "watching the watchers" in client.transcript_text()

    heading("axdump: heard on 145.01 MHz (first 45 lines)")
    print("\n".join(monitor.render().split("\n")[:45]))

    for stack, label in (
        (testbed.gateway.stack, "gateway (microvax)"),
        (testbed.ether_host, "wally"),
        (testbed.pc.stack, "ibmpc"),
    ):
        heading(f"ifconfig -a @ {label}")
        print(format_interfaces(stack))
        heading(f"netstat -r @ {label}")
        print(format_routes(stack))
        heading(f"arp -a @ {label}")
        print(format_arp_table(stack))

    heading("netstat (protocol statistics) @ gateway")
    print(format_netstat(testbed.gateway.stack))

    heading("summary")
    print(f"frames monitored off the air : {monitor.frames_heard}")
    print(f"gateway datagrams forwarded  : "
          f"{testbed.gateway.stack.counters['ip_forwarded']}")
    print(f"driver character interrupts  : "
          f"{testbed.gateway.radio_interface.rx_char_interrupts}")


if __name__ == "__main__":
    main()
