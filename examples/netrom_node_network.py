#!/usr/bin/env python
"""The pre-IP network layer: NET/ROM nodes and the three-connect ritual.

The paper's introduction describes how NET/ROM users reached distant
stations: "users would connect to a node on the network.  They would
then connect to the NET/ROM node nearest their destination.  Finally,
they would connect to their destination."

This example builds a three-node backbone (Seattle -- Olympia --
Tacoma, each link on its own frequency), lets the NODES gossip
converge, then walks a terminal user through the ritual to reach a BBS
two nodes away -- and prints why the paper argued for IP instead: the
BBS never learns who the user actually is.

Run:  python examples/netrom_node_network.py
"""

from repro.apps.bbs import BulletinBoard
from repro.core.hosts import TerminalStation
from repro.netrom import NetRomNode, NodeShell
from repro.radio.channel import RadioChannel
from repro.radio.modem import ModemProfile
from repro.sim.clock import SECOND
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=44)
    modem = ModemProfile(bit_rate=1200)

    # Frequencies: one user channel per city, one per backbone link.
    seattle_users = RadioChannel(sim, streams, name="sea-145.01")
    tacoma_users = RadioChannel(sim, streams, name="tac-145.03")
    link_so = RadioChannel(sim, streams, name="bb-223.58")
    link_ot = RadioChannel(sim, streams, name="bb-223.62")

    seattle = NetRomNode(sim, "SEA7N", "SEA")
    olympia = NetRomNode(sim, "OLY7N", "OLY")
    tacoma = NetRomNode(sim, "TAC7N", "TAC")

    seattle.add_port(seattle_users, modem=modem)   # port 0: users
    seattle.add_port(link_so, modem=modem)         # port 1: to Olympia
    olympia.add_port(link_so, modem=modem)
    olympia.add_port(link_ot, modem=modem)
    tacoma.add_port(tacoma_users, modem=modem)
    tacoma.add_port(link_ot, modem=modem)

    seattle.add_neighbour(1, "OLY7N")
    olympia.add_neighbour(0, "SEA7N")
    olympia.add_neighbour(1, "TAC7N")
    tacoma.add_neighbour(1, "OLY7N")

    # Olympia is backbone-only: circuits relay through it at the
    # network layer, so only the user-facing nodes need shells.
    NodeShell(seattle)
    NodeShell(tacoma)
    for node in (seattle, olympia, tacoma):
        node.start_broadcasting()

    bbs = BulletinBoard(sim, tacoma_users, "W0RLI", modem=modem)
    user = TerminalStation(sim, seattle_users, "KD7NM")

    print("letting NODES broadcasts converge...")
    sim.run(until=150 * SECOND)
    print("Seattle's route table:")
    for route in seattle.routes.values():
        print(f"  {route.alias:<6} {route.destination} via {route.neighbour} "
              f"quality {route.quality}")
    print()

    script = [
        (10, "connect SEA7N"),     # connect #1: the local node
        (100, "NODES"),            # ask what the network knows
        (200, "CONNECT TAC"),      # connect #2: node nearest the target
        (320, "CONNECT W0RLI"),    # connect #3: the destination itself
        (500, "S N7AKR"),          # leave mail on the BBS
        (560, "made it through the node network"),
        (600, "/EX"),
        (760, "B"),                # log off the BBS
    ]
    base = sim.now
    for t, line in script:
        sim.at(base + t * SECOND, user.type_line, line)
    sim.run(until=base + 1000 * SECOND)

    print("the user's terminal session:")
    print(user.screen_text())
    print()
    print(f"BBS message base: {len(bbs.messages)} message(s)")
    for message in bbs.messages:
        print(f"  #{message.number} to {message.to} from {message.origin}: "
              f"{message.body!r}")
    print()
    print("note the origin above: the BBS saw the *node* TAC7N, not KD7NM --")
    print("the loss of end-to-end identity that §1 of the paper holds against")
    print("NET/ROM, and the reason the authors built an IP gateway instead.")
    assert bbs.messages and bbs.messages[0].origin == "TAC7N"


if __name__ == "__main__":
    main()
